package vclock

import "sync"

// Mutex is a scheduler-aware mutual-exclusion lock. A goroutine blocked in
// Lock parks through a Scheduler event, so under a Virtual scheduler the
// wait is visible to the clock and simulated time keeps advancing. Holding
// a plain sync.Mutex across an operation that blocks in virtual time (for
// example a simnet Write) wedges the whole simulation: the second locker
// blocks invisibly, the runnable count never reaches zero, and no timer
// ever fires. Use Mutex wherever a lock can be held across such a wait.
//
// Lock order is FIFO. The zero value is not usable; construct with
// NewMutex.
type Mutex struct {
	sched Scheduler

	mu     sync.Mutex // guards the fields below only; never held while blocked
	locked bool
	q      []Event // parked waiters in arrival order
}

// NewMutex returns an unlocked Mutex that parks waiters on s.
func NewMutex(s Scheduler) *Mutex { return &Mutex{sched: s} }

// Lock acquires the mutex, blocking through the scheduler while another
// goroutine holds it. A non-nil error means the scheduler shut down before
// the lock was acquired; the caller must not enter the critical section
// and must not call Unlock.
func (m *Mutex) Lock() error {
	m.mu.Lock()
	if !m.locked {
		m.locked = true
		m.mu.Unlock()
		return nil
	}
	ev := m.sched.NewEvent()
	m.q = append(m.q, ev)
	m.mu.Unlock()
	if _, err := ev.Wait(nil); err != nil {
		// Scheduler shutdown: ownership was never transferred. Remove the
		// stale queue entry so Unlock does not try to hand the lock to a
		// goroutine that has already unwound.
		m.mu.Lock()
		for i, q := range m.q {
			if q == ev {
				m.q = append(m.q[:i], m.q[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		return err
	}
	return nil
}

// Unlock releases the mutex, handing ownership to the oldest waiter if any.
// Unlock of an unlocked Mutex panics, mirroring sync.Mutex.
func (m *Mutex) Unlock() {
	for {
		m.mu.Lock()
		if !m.locked {
			m.mu.Unlock()
			panic("vclock: Unlock of unlocked Mutex")
		}
		if len(m.q) == 0 {
			m.locked = false
			m.mu.Unlock()
			return
		}
		ev := m.q[0]
		m.q = m.q[1:]
		m.mu.Unlock()
		// Ownership transfers directly: locked stays true. A waiter that
		// already unwound with ErrStopped leaves its event delivered; skip
		// it and try the next one.
		if tryFire(ev, nil) {
			return
		}
	}
}

// tryFire delivers v to ev unless it was already delivered (for example by
// scheduler shutdown). It reports whether this call delivered the payload.
func tryFire(ev Event, v any) bool {
	switch e := ev.(type) {
	case *virtEvent:
		e.clock.mu.Lock()
		defer e.clock.mu.Unlock()
		if e.fired {
			return false
		}
		e.deliverLocked(v, nil)
		return true
	case *realEvent:
		fired := false
		e.once.Do(func() {
			e.ch <- v
			fired = true
		})
		return fired
	default:
		ev.Fire(v)
		return true
	}
}
