package vclock

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Parallel runs fn(0..n-1) concurrently on s and waits for all calls to
// finish. It returns the first non-nil error by index order. Waiting is
// done through scheduler events, so it is safe inside simulations (a
// sync.WaitGroup would block invisibly and wedge the virtual clock). A
// panic in a worker is captured and returned as an error carrying the
// worker's stack, so one buggy worker cannot kill the process from a
// goroutine the caller cannot recover in.
func Parallel(s Scheduler, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(0) // no goroutine churn for the common single case
	}
	evs := make([]Event, n)
	for i := 0; i < n; i++ {
		i := i
		evs[i] = s.NewEvent()
		s.Go(func() {
			defer func() {
				if r := recover(); r != nil {
					evs[i].Fire(fmt.Errorf("vclock: panic in Parallel worker %d: %v\n%s",
						i, r, debug.Stack()))
				}
			}()
			evs[i].Fire(fn(i))
		})
	}
	var first error
	for i := 0; i < n; i++ {
		v, err := evs[i].Wait(nil)
		if err != nil && first == nil {
			first = err
		}
		if e, ok := v.(error); ok && first == nil {
			first = e
		}
	}
	return first
}

// ParallelLimit is Parallel with at most limit workers running at once.
// Work items are handed to workers in index order; after the first error,
// no new items start (in-flight items finish). A limit <= 0 means
// unbounded.
func ParallelLimit(s Scheduler, n, limit int, fn func(i int) error) error {
	if limit <= 0 || limit >= n {
		return Parallel(s, n, fn)
	}
	var mu sync.Mutex
	next := 0
	var firstErr error
	worker := func() {
		for {
			mu.Lock()
			if firstErr != nil || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}
	}
	if err := Parallel(s, limit, func(int) error { worker(); return nil }); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
