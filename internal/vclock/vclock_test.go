package vclock

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesInstantly(t *testing.T) {
	v := NewVirtual(0)
	wallStart := time.Now()
	var end time.Duration
	err := v.Run(func() {
		v.Sleep(24 * time.Hour)
		end = v.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if end != 24*time.Hour {
		t.Fatalf("Now after sleep = %v, want 24h", end)
	}
	if wall := time.Since(wallStart); wall > 5*time.Second {
		t.Fatalf("virtual day took %v of wall time", wall)
	}
}

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual(0)
	var mu sync.Mutex
	var order []int
	err := v.Run(func() {
		// Each sleeper fires its own event; the root must block only on
		// clock-visible primitives (a sync.WaitGroup here would wedge the
		// simulation, since the clock could not see the root as blocked).
		durs := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
		ids := []int{3, 1, 2}
		evs := make([]Event, len(durs))
		for i := range durs {
			i := i
			evs[i] = v.NewEvent()
			v.Go(func() {
				v.Sleep(durs[i])
				mu.Lock()
				order = append(order, ids[i])
				mu.Unlock()
				evs[i].Fire(nil)
			})
		}
		for _, ev := range evs {
			ev.Wait(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v, want [1 2 3]", order)
	}
}

func TestVirtualEventHandoff(t *testing.T) {
	v := NewVirtual(0)
	err := v.Run(func() {
		ev := v.NewEvent()
		v.Go(func() {
			v.Sleep(time.Second)
			ev.Fire("payload")
		})
		got, err := ev.Wait(nil)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		if got != "payload" {
			t.Errorf("payload = %v", got)
		}
		if v.Now() != time.Second {
			t.Errorf("Now = %v, want 1s", v.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualFireBeforeWait(t *testing.T) {
	v := NewVirtual(0)
	err := v.Run(func() {
		ev := v.NewEvent()
		ev.Fire(42)
		got, err := ev.Wait(nil)
		if err != nil || got != 42 {
			t.Errorf("Wait = %v, %v", got, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualDeadlockDetection(t *testing.T) {
	v := NewVirtual(0)
	err := v.Run(func() {
		ev := v.NewNamedEvent("never-fired")
		_, werr := ev.Wait(nil)
		if !errors.Is(werr, ErrDeadlock) {
			t.Errorf("Wait err = %v, want ErrDeadlock", werr)
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run err = %v, want ErrDeadlock", err)
	}
}

func TestVirtualHorizon(t *testing.T) {
	v := NewVirtual(time.Minute)
	err := v.Run(func() {
		v.Sleep(2 * time.Minute)
	})
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("Run err = %v, want ErrHorizon", err)
	}
}

func TestVirtualStoppedUnwindsServices(t *testing.T) {
	v := NewVirtual(0)
	var serviceSawStop atomic.Bool
	unwound := make(chan struct{})
	err := v.Run(func() {
		// A "service" that waits forever, like an accept loop.
		v.Go(func() {
			ev := v.NewNamedEvent("accept")
			_, werr := ev.Wait(nil)
			if errors.Is(werr, ErrStopped) {
				serviceSawStop.Store(true)
			}
			close(unwound)
		})
		v.Sleep(time.Second) // experiment body; returns while service blocked
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-unwound:
	case <-time.After(5 * time.Second):
		t.Fatal("service goroutine did not unwind")
	}
	if !serviceSawStop.Load() {
		t.Fatal("service did not observe ErrStopped")
	}
}

func TestVirtualManyGoroutines(t *testing.T) {
	v := NewVirtual(0)
	const n = 500
	var total atomic.Int64
	err := v.Run(func() {
		evs := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = v.NewEvent()
			v.Go(func() {
				v.Sleep(time.Duration(i%17+1) * time.Millisecond)
				total.Add(1)
				evs[i].Fire(nil)
			})
		}
		for _, ev := range evs {
			ev.Wait(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != n {
		t.Fatalf("completed %d of %d", total.Load(), n)
	}
	if got := v.Now(); got != 17*time.Millisecond {
		t.Fatalf("final time %v, want 17ms", got)
	}
}

func TestVirtualDoubleFirePanics(t *testing.T) {
	v := NewVirtual(0)
	v.Run(func() {
		ev := v.NewEvent()
		ev.Fire(nil)
		defer func() {
			if recover() == nil {
				t.Error("second Fire did not panic")
			}
		}()
		ev.Fire(nil)
	})
}

func TestVirtualZeroSleepIsNoop(t *testing.T) {
	v := NewVirtual(0)
	err := v.Run(func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		if v.Now() != 0 {
			t.Errorf("Now = %v after zero sleeps", v.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRealSchedulerBasics(t *testing.T) {
	r := NewReal()
	ev := r.NewEvent()
	r.Go(func() { ev.Fire("x") })
	got, err := ev.Wait(context.Background())
	if err != nil || got != "x" {
		t.Fatalf("Wait = %v, %v", got, err)
	}
	before := r.Now()
	r.Sleep(5 * time.Millisecond)
	if r.Now()-before < 4*time.Millisecond {
		t.Fatal("Real.Sleep returned too early")
	}
}

func TestRealEventCtxCancel(t *testing.T) {
	r := NewReal()
	ev := r.NewEvent()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ev.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestVirtualFireAtOrdersWithSleep(t *testing.T) {
	v := NewVirtual(0)
	err := v.Run(func() {
		ev := v.NewEvent()
		v.FireAt(ev, 50*time.Millisecond)
		v.Sleep(10 * time.Millisecond)
		if v.Now() != 10*time.Millisecond {
			t.Errorf("mid Now = %v", v.Now())
		}
		ev.Wait(nil)
		if v.Now() != 50*time.Millisecond {
			t.Errorf("end Now = %v", v.Now())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
