package vclock

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutexRealExclusion(t *testing.T) {
	r := NewReal()
	m := NewMutex(r)
	const workers, iters = 8, 200
	var counter int // racy unless the mutex works
	evs := make([]Event, workers)
	for i := 0; i < workers; i++ {
		evs[i] = r.NewEvent()
		ev := evs[i]
		r.Go(func() {
			for j := 0; j < iters; j++ {
				if err := m.Lock(); err != nil {
					t.Errorf("Lock: %v", err)
					break
				}
				counter++
				m.Unlock()
			}
			ev.Fire(nil)
		})
	}
	for _, ev := range evs {
		ev.Wait(nil)
	}
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
}

// TestMutexHeldAcrossVirtualWait is the regression test for the simulation
// wedge this type exists to prevent: one goroutine sleeps in virtual time
// while holding the lock, and a second goroutine's Lock must park visibly
// so the clock can advance past the sleep.
func TestMutexHeldAcrossVirtualWait(t *testing.T) {
	v := NewVirtual(0)
	m := NewMutex(v)
	var second time.Duration
	err := v.Run(func() {
		done := v.NewEvent()
		if err := m.Lock(); err != nil {
			t.Errorf("Lock: %v", err)
		}
		v.Go(func() {
			if err := m.Lock(); err != nil {
				t.Errorf("second Lock: %v", err)
			}
			second = v.Now()
			m.Unlock()
			done.Fire(nil)
		})
		v.Sleep(time.Hour) // hold the lock across a virtual-time block
		m.Unlock()
		done.Wait(nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if second != time.Hour {
		t.Fatalf("second locker entered at %v, want 1h", second)
	}
}

func TestMutexFIFOUnderVirtual(t *testing.T) {
	v := NewVirtual(0)
	m := NewMutex(v)
	var order []int
	err := v.Run(func() {
		if err := m.Lock(); err != nil {
			t.Fatalf("Lock: %v", err)
		}
		evs := make([]Event, 5)
		for i := range evs {
			i := i
			evs[i] = v.NewEvent()
			v.Go(func() {
				// Stagger arrival so the queue order is deterministic.
				v.Sleep(time.Duration(i+1) * time.Millisecond)
				if err := m.Lock(); err != nil {
					t.Errorf("Lock %d: %v", i, err)
					evs[i].Fire(nil)
					return
				}
				order = append(order, i)
				m.Unlock()
				evs[i].Fire(nil)
			})
		}
		v.Sleep(10 * time.Millisecond) // let all five park
		m.Unlock()
		for _, ev := range evs {
			ev.Wait(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("acquisition order = %v, want FIFO", order)
		}
	}
}

func TestMutexLockFailsAfterShutdown(t *testing.T) {
	v := NewVirtual(0)
	m := NewMutex(v)
	var sawStop atomic.Bool
	unwound := make(chan struct{})
	err := v.Run(func() {
		if err := m.Lock(); err != nil {
			t.Errorf("Lock: %v", err)
		}
		v.Go(func() {
			// Parked waiter when the experiment body returns below.
			if err := m.Lock(); errors.Is(err, ErrStopped) {
				sawStop.Store(true)
			} else if err == nil {
				m.Unlock()
			}
			close(unwound)
		})
		v.Sleep(time.Millisecond) // let the waiter park, then finish
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-unwound:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not unwind after shutdown")
	}
	if !sawStop.Load() {
		t.Fatal("parked Lock did not return ErrStopped")
	}
}

func TestMutexUnlockAfterStoppedWaiterSkipsIt(t *testing.T) {
	v := NewVirtual(0)
	m := NewMutex(v)
	err := v.Run(func() {
		if err := m.Lock(); err != nil {
			t.Fatalf("Lock: %v", err)
		}
		v.Go(func() {
			m.Lock() // will be unwound by shutdown; error ignored on purpose
		})
		v.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	// After Run, the waiter's event was delivered ErrStopped. Unlock must
	// skip it without panicking and leave the mutex free.
	m.Unlock()
	if err := m.Lock(); err != nil {
		t.Fatalf("re-Lock after shutdown handoff: %v", err)
	}
	m.Unlock()
}

func TestMutexUnlockOfUnlockedPanics(t *testing.T) {
	m := NewMutex(NewReal())
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked Mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestMutexVirtualContention(t *testing.T) {
	v := NewVirtual(0)
	m := NewMutex(v)
	const workers = 32
	var inside, max int
	err := v.Run(func() {
		evs := make([]Event, workers)
		for i := 0; i < workers; i++ {
			i := i
			evs[i] = v.NewEvent()
			v.Go(func() {
				for j := 0; j < 5; j++ {
					if err := m.Lock(); err != nil {
						t.Errorf("Lock: %v", err)
						break
					}
					inside++
					if inside > max {
						max = inside
					}
					v.Sleep(time.Microsecond) // block in virtual time while held
					inside--
					m.Unlock()
				}
				evs[i].Fire(nil)
			})
		}
		for _, ev := range evs {
			ev.Wait(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", max)
	}
}
