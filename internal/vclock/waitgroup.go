package vclock

import (
	"context"
	"sync"
	"time"
)

// WaitGroup is a scheduler-aware join counter: the replacement for
// sync.WaitGroup wherever the waiter may run under a Virtual scheduler.
// A plain sync.WaitGroup.Wait blocks invisibly — the simulation counts
// the waiter as runnable, virtual time never advances, and the world
// wedges — so long-lived components join their goroutines through this
// type instead. Waiting parks through a scheduler Event, which both
// schedulers understand.
//
// The goleak analyzer treats a spawn through Go as joined when the
// package also calls Wait on the same WaitGroup token, so using this
// type is the checked way to spawn background goroutines.
type WaitGroup struct {
	sched Scheduler

	mu      sync.Mutex
	n       int
	waiters []Event
}

// NewWaitGroup returns a WaitGroup that parks waiters through sched.
func NewWaitGroup(sched Scheduler) *WaitGroup {
	return &WaitGroup{sched: sched}
}

// Add adjusts the counter, firing all parked waiters when it reaches
// zero. Like sync.WaitGroup, a negative counter panics.
func (w *WaitGroup) Add(delta int) {
	w.mu.Lock()
	w.n += delta
	if w.n < 0 {
		w.mu.Unlock()
		panic("vclock: negative WaitGroup counter")
	}
	var fire []Event
	if w.n == 0 {
		fire = w.waiters
		w.waiters = nil
	}
	w.mu.Unlock()
	for _, ev := range fire {
		ev.Fire(nil)
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Go runs fn on the scheduler with the counter held for its lifetime:
// Add before spawn, Done when fn returns. Every spawn made this way is
// joined by a later Wait.
func (w *WaitGroup) Go(fn func()) {
	w.Add(1)
	//blobseer:goroutine detached the join is this WaitGroup's own contract: Wait returns only after the deferred Done, which the analyzer cannot tie to a Wait call absent from this package
	w.sched.Go(func() {
		defer w.Done()
		fn()
	})
}

// Wait blocks until the counter reaches zero. A non-nil error means the
// scheduler shut down first (Virtual only); the goroutines being joined
// were unwound by the same shutdown, so callers may treat it as joined.
func (w *WaitGroup) Wait() error {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return nil
	}
	ev := w.sched.NewEvent()
	w.waiters = append(w.waiters, ev)
	w.mu.Unlock()
	_, err := ev.Wait(nil)
	return err
}

// SleepCtx sleeps for d or until ctx is cancelled, whichever comes
// first, returning nil after a full sleep and the cancellation or
// shutdown error otherwise. Under a Virtual scheduler ctx is ignored —
// exactly like Event.Wait — because cancellation from outside the
// simulation would break causal determinism; virtual sleeps are free,
// so loops simply check ctx.Err after waking. Under Real it makes
// periodic loops (heartbeats, sweeps) promptly interruptible, so Close
// never stalls for a full period.
func SleepCtx(ctx context.Context, s Scheduler, d time.Duration) error {
	if _, ok := s.(*Virtual); ok || ctx == nil {
		return s.Sleep(d)
	}
	ev := s.NewEvent()
	t := time.AfterFunc(d, func() { ev.Fire(nil) })
	defer t.Stop()
	_, err := ev.Wait(ctx)
	return err
}
