// Package vclock abstracts time and goroutine scheduling so that the same
// BlobSeer service code can run either in real time (production, tests)
// or in simulated virtual time (the experiment harness, which replays the
// paper's Grid'5000 testbed on one machine).
//
// The Virtual scheduler implements discrete-event simulation with
// cooperating goroutines: every goroutine participating in the simulation
// is spawned through Go, and every blocking operation goes through Event
// or Sleep. The clock advances to the next pending timer exactly when all
// registered goroutines are blocked, so arbitrarily long simulated
// stretches execute in microseconds of wall time while preserving causal
// ordering and (simulated) durations.
package vclock

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrStopped is delivered to goroutines still blocked when a Virtual
// scheduler shuts down after its Run function completes.
var ErrStopped = errors.New("vclock: scheduler stopped")

// ErrDeadlock is delivered to all blocked goroutines when the Virtual
// scheduler detects that every registered goroutine is blocked and no
// timer is pending: simulated time can never advance again.
var ErrDeadlock = errors.New("vclock: deadlock: all goroutines blocked with no pending timers")

// ErrHorizon is delivered when simulated time exceeds the configured
// horizon, which usually indicates a runaway simulation.
var ErrHorizon = errors.New("vclock: simulation horizon exceeded")

// Scheduler is the time-and-concurrency environment handed to every
// BlobSeer component. Real forwards to the Go runtime; Virtual simulates.
type Scheduler interface {
	// Go runs fn concurrently. Under Virtual, fn joins the simulation and
	// must block only through this Scheduler's primitives.
	Go(fn func())
	// Sleep pauses the calling goroutine for d. A non-nil error means the
	// scheduler is shutting down; periodic loops must exit instead of
	// retrying, or they would spin once virtual time stops.
	Sleep(d time.Duration) error
	// Now returns the time elapsed since the scheduler was created.
	Now() time.Duration
	// NewEvent returns a fresh one-shot event for blocking handoffs.
	NewEvent() Event
}

// Event is a one-shot synchronization point carrying a payload. Fire may
// be called at most once; Wait blocks until Fire (or scheduler shutdown)
// and returns the payload. Wait may be called at most once.
type Event interface {
	// Fire delivers v to the waiter. Calling Fire twice panics.
	Fire(v any)
	// Wait blocks until Fire. Under Real, ctx cancellation aborts the
	// wait; under Virtual ctx is ignored (the simulation is causal and
	// cancellation would break determinism).
	Wait(ctx context.Context) (any, error)
}

// --------------------------------------------------------------- real

// Real is the production Scheduler: wall-clock time and ordinary
// goroutines. Construct with NewReal.
type Real struct{ start time.Time }

// NewReal returns a Scheduler backed by the Go runtime.
func NewReal() *Real { return &Real{start: time.Now()} }

// Go implements Scheduler.
func (*Real) Go(fn func()) {
	//blobseer:goroutine detached Go is the spawn primitive itself: the caller owns the join, and vclock.WaitGroup.Go is the checked way to get one
	go fn()
}

// Sleep implements Scheduler.
func (*Real) Sleep(d time.Duration) error {
	time.Sleep(d)
	return nil
}

// Now implements Scheduler.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// NewEvent implements Scheduler.
func (*Real) NewEvent() Event { return &realEvent{ch: make(chan any, 1)} }

type realEvent struct {
	once sync.Once
	ch   chan any
}

func (e *realEvent) Fire(v any) {
	fired := false
	e.once.Do(func() {
		e.ch <- v
		fired = true
	})
	if !fired {
		panic("vclock: Event fired twice")
	}
}

func (e *realEvent) Wait(ctx context.Context) (any, error) {
	if ctx == nil {
		return <-e.ch, nil
	}
	select {
	case v := <-e.ch:
		return v, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ------------------------------------------------------------- virtual

// Virtual is the discrete-event Scheduler. All participating goroutines
// are spawned via Go from inside Run; time advances only when every one
// of them is blocked in Sleep or Event.Wait.
type Virtual struct {
	mu       sync.Mutex
	now      time.Duration
	runnable int  // registered goroutines not currently blocked
	stopped  bool // Run finished or fatal condition; no new blocking
	fatal    error
	timers   timerQueue
	waiting  map[*virtEvent]struct{} // events with a blocked waiter
	horizon  time.Duration
	seq      int // tiebreak for deterministic timer order
	label    map[*virtEvent]string
}

// NewVirtual returns a simulation scheduler. The horizon bounds total
// simulated time as a runaway guard; 0 means a generous default (10^6 s).
func NewVirtual(horizon time.Duration) *Virtual {
	if horizon <= 0 {
		horizon = 1e6 * time.Second
	}
	return &Virtual{
		waiting: make(map[*virtEvent]struct{}),
		label:   make(map[*virtEvent]string),
		horizon: horizon,
	}
}

// Run executes root inside the simulation and blocks (in real time) until
// root returns. Goroutines spawned by root that are still blocked at that
// point receive ErrStopped from their pending waits so they can unwind.
// Run reports ErrDeadlock or ErrHorizon if the simulation wedged before
// root completed. Run must be called exactly once, and all interaction
// with simulated objects must happen on goroutines rooted in root.
func (v *Virtual) Run(root func()) error {
	done := make(chan struct{})
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
	go func() {
		root()
		// Stop the world in the same critical section as this goroutine's
		// deregistration: otherwise the deadlock detector could fire on
		// service goroutines that legitimately outlive the experiment.
		v.mu.Lock()
		v.stopped = true
		v.runnable--
		for ev := range v.waiting {
			delete(v.waiting, ev)
			ev.deliverLocked(nil, ErrStopped)
		}
		v.timers = nil
		v.mu.Unlock()
		close(done)
	}()
	<-done
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fatal
}

// Go implements Scheduler.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.runnable++
	v.mu.Unlock()
	//blobseer:goroutine detached Go is the spawn primitive itself: participants deregister through runnable accounting and Run joins the whole world
	go func() {
		defer func() {
			v.mu.Lock()
			v.runnable--
			v.maybeAdvanceLocked()
			v.mu.Unlock()
		}()
		fn()
	}()
}

// Now implements Scheduler.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Scheduler.
func (v *Virtual) Sleep(d time.Duration) error {
	if d <= 0 {
		v.mu.Lock()
		defer v.mu.Unlock()
		if v.stopped {
			return ErrStopped
		}
		return nil
	}
	ev := v.newVirtEvent("sleep")
	v.FireAt(ev, d)
	_, err := ev.Wait(nil)
	return err
}

// NewEvent implements Scheduler.
func (v *Virtual) NewEvent() Event { return v.newVirtEvent("") }

// NewNamedEvent returns an event whose label appears in deadlock
// diagnostics.
func (v *Virtual) NewNamedEvent(label string) Event { return v.newVirtEvent(label) }

func (v *Virtual) newVirtEvent(label string) *virtEvent {
	ev := &virtEvent{clock: v}
	if label != "" {
		v.mu.Lock()
		v.label[ev] = label
		v.mu.Unlock()
	}
	return ev
}

// FireAt schedules ev to fire with a nil payload after simulated delay d.
// It is the building block for timers and the network simulator's
// transfer completions.
func (v *Virtual) FireAt(e Event, d time.Duration) {
	ev, ok := e.(*virtEvent)
	if !ok {
		panic("vclock: FireAt requires an event from this scheduler")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		ev.deliverLocked(nil, ErrStopped)
		return
	}
	v.seq++
	heap.Push(&v.timers, timerEntry{at: v.now + d, seq: v.seq, ev: ev})
}

// maybeAdvanceLocked advances simulated time when no goroutine can run.
// Called with v.mu held.
func (v *Virtual) maybeAdvanceLocked() {
	if v.runnable != 0 || v.stopped {
		return
	}
	if len(v.timers) == 0 {
		if len(v.waiting) == 0 {
			return // everything exited; Run is about to finish
		}
		v.failLocked(ErrDeadlock)
		return
	}
	next := v.timers[0].at
	if next > v.horizon {
		v.failLocked(fmt.Errorf("%w (at %v)", ErrHorizon, next))
		return
	}
	if next > v.now {
		v.now = next
	}
	// Fire every timer scheduled for this instant.
	for len(v.timers) > 0 && v.timers[0].at <= v.now {
		entry := heap.Pop(&v.timers).(timerEntry)
		entry.ev.fireLocked(nil, nil)
	}
}

// failLocked records a fatal condition and unwinds all blocked waiters.
func (v *Virtual) failLocked(err error) {
	if v.fatal == nil {
		v.fatal = fmt.Errorf("%w\n%s", err, v.snapshotLocked())
	}
	v.stopped = true
	for ev := range v.waiting {
		delete(v.waiting, ev)
		ev.deliverLocked(nil, err)
	}
	v.timers = nil
}

// snapshotLocked renders a diagnostic of blocked events for deadlock
// reports.
func (v *Virtual) snapshotLocked() string {
	counts := make(map[string]int)
	for ev := range v.waiting {
		l := v.label[ev]
		if l == "" {
			l = "unnamed"
		}
		counts[l]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "blocked waiters at t=%v:", v.now)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, counts[k])
	}
	return b.String()
}

// virtEvent is the Virtual scheduler's Event. State transitions are
// protected by the scheduler mutex so runnable accounting is exact.
type virtEvent struct {
	clock   *Virtual
	fired   bool
	waited  bool
	payload any
	err     error
	ch      chan struct{} // created lazily by Wait
}

// Fire implements Event.
func (e *virtEvent) Fire(v any) {
	e.clock.mu.Lock()
	defer e.clock.mu.Unlock()
	e.fireLocked(v, nil)
}

// fireLocked delivers the payload, waking the waiter if present.
func (e *virtEvent) fireLocked(v any, err error) {
	if e.fired {
		panic("vclock: Event fired twice")
	}
	e.deliverLocked(v, err)
}

func (e *virtEvent) deliverLocked(v any, err error) {
	if e.fired {
		return
	}
	e.fired = true
	e.payload, e.err = v, err
	if e.ch != nil { // waiter already parked
		e.clock.runnable++
		delete(e.clock.waiting, e)
		close(e.ch)
	}
	delete(e.clock.label, e)
}

// Wait implements Event. ctx is ignored under Virtual.
func (e *virtEvent) Wait(context.Context) (any, error) {
	c := e.clock
	c.mu.Lock()
	if e.waited {
		c.mu.Unlock()
		panic("vclock: Event waited twice")
	}
	e.waited = true
	if e.fired {
		v, err := e.payload, e.err
		c.mu.Unlock()
		return v, err
	}
	if c.stopped {
		c.mu.Unlock()
		return nil, ErrStopped
	}
	e.ch = make(chan struct{})
	c.waiting[e] = struct{}{}
	c.runnable--
	c.maybeAdvanceLocked()
	c.mu.Unlock()
	<-e.ch
	return e.payload, e.err
}

// timerQueue is a min-heap of pending timers ordered by time, then
// insertion sequence for determinism.
type timerEntry struct {
	at  time.Duration
	seq int
	ev  *virtEvent
}

type timerQueue []timerEntry

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *timerQueue) Push(x interface{}) { *q = append(*q, x.(timerEntry)) }
func (q *timerQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
