package provider

import (
	"testing"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/vclock"
)

// TestClosePromptDespiteLongHeartbeat pins the lifecycle contract: Close
// must interrupt the heartbeat loop's sleep via context cancellation,
// not wait out the period. With a one-hour heartbeat a Close that takes
// more than a moment means the cancellation path regressed.
func TestClosePromptDespiteLongHeartbeat(t *testing.T) {
	net := transport.NewInproc()
	sched := vclock.NewReal()
	mln, err := net.Listen("manager")
	if err != nil {
		t.Fatal(err)
	}
	m := ServeManager(mln, ManagerConfig{Sched: sched})
	defer m.Close()
	cl := rpc.NewClient(net, sched, rpc.ClientOptions{})
	defer cl.Close()

	ln, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Serve(ln, Config{
		Sched:          sched,
		ManagerAddr:    "manager",
		Client:         cl,
		HeartbeatEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	p.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v with a 1h heartbeat; cancellation is not interrupting the sleep", elapsed)
	}
}
