package provider

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blobseer/internal/pagestore"
	"blobseer/internal/rpc"
	"blobseer/internal/simnet"
	"blobseer/internal/transport"
	"blobseer/internal/vclock"
	"blobseer/internal/wire"
)

// testRig wires a manager and n providers over an in-process network.
type testRig struct {
	net      *transport.Inproc
	sched    vclock.Scheduler
	client   *rpc.Client
	manager  *Manager
	provs    []*Provider
	cleanups []func()
}

func newRig(t *testing.T, n int, mcfg ManagerConfig) *testRig {
	t.Helper()
	r := &testRig{net: transport.NewInproc(), sched: vclock.NewReal()}
	if mcfg.Sched == nil {
		mcfg.Sched = r.sched
	}
	r.client = rpc.NewClient(r.net, r.sched, rpc.ClientOptions{})
	mln, err := r.net.Listen("manager")
	if err != nil {
		t.Fatal(err)
	}
	r.manager = ServeManager(mln, mcfg)
	for i := 0; i < n; i++ {
		ln, err := r.net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		p, err := Serve(ln, Config{
			Sched:          r.sched,
			ManagerAddr:    "manager",
			Client:         r.client,
			HeartbeatEvery: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.provs = append(r.provs, p)
	}
	t.Cleanup(func() {
		for _, p := range r.provs {
			p.Close()
		}
		r.manager.Close()
		r.client.Close()
		r.net.Close()
	})
	return r
}

func (r *testRig) call(t *testing.T, addr string, req wire.Msg) wire.Msg {
	t.Helper()
	resp, err := r.client.Call(context.Background(), addr, req)
	if err != nil {
		t.Fatalf("%v to %s: %v", req.Kind(), addr, err)
	}
	return resp
}

func TestPutGetPageOverRPC(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	addr := r.provs[0].Addr()
	id := wire.PageID{1, 2, 3}
	data := []byte("page contents here")

	r.call(t, addr, &wire.PutPageReq{Page: id, Data: data})
	resp := r.call(t, addr, &wire.GetPageReq{Page: id, Length: wire.WholePage})
	if !bytes.Equal(resp.(*wire.GetPageResp).Data, data) {
		t.Fatalf("got %q", resp.(*wire.GetPageResp).Data)
	}

	// Partial read: the paper's unaligned READ fetches only part of a page.
	resp = r.call(t, addr, &wire.GetPageReq{Page: id, Offset: 5, Length: 8})
	if got := string(resp.(*wire.GetPageResp).Data); got != "contents" {
		t.Fatalf("partial read = %q", got)
	}

	has := r.call(t, addr, &wire.HasPageReq{Page: id})
	if !has.(*wire.HasPageResp).Found {
		t.Fatal("HasPage = false")
	}

	stats := r.call(t, addr, &wire.ProviderStatsReq{})
	if s := stats.(*wire.ProviderStatsResp); s.Pages != 1 || s.Bytes != uint64(len(data)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetMissingPageError(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	_, err := r.client.Call(context.Background(), r.provs[0].Addr(),
		&wire.GetPageReq{Page: wire.PageID{9}, Length: wire.WholePage})
	if !wire.IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestGetBadRangeError(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	addr := r.provs[0].Addr()
	r.call(t, addr, &wire.PutPageReq{Page: wire.PageID{1}, Data: []byte("xy")})
	_, err := r.client.Call(context.Background(), addr,
		&wire.GetPageReq{Page: wire.PageID{1}, Offset: 5, Length: 1})
	if !wire.IsOutOfBounds(err) {
		t.Fatalf("err = %v, want out-of-bounds", err)
	}
}

// isBadRequest reports whether err is a protocol bad-request error.
func isBadRequest(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeBadRequest
}

// TestGetPagesRequestCaps exercises the server-side bounds on one
// GetPagesReq: the range-count cap (a batch at the cap is served, one
// past it is rejected) and the cumulative-response-byte cap (two pages
// that together exceed it are rejected, each alone is served — the
// first range is exempt for parity with GetPageReq).
func TestGetPagesRequestCaps(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	addr := r.provs[0].Addr()

	ranges := make([]wire.PageRange, wire.MaxGetPagesRanges)
	for i := range ranges {
		ranges[i] = wire.PageRange{
			Page:   wire.PageID{byte(i), byte(i >> 8), 0xee},
			Length: wire.WholePage,
		}
	}
	resp := r.call(t, addr, &wire.GetPagesReq{Ranges: ranges})
	for i, f := range resp.(*wire.GetPagesResp).Found {
		if f {
			t.Fatalf("range %d unexpectedly found", i)
		}
	}

	over := append(ranges, wire.PageRange{Page: wire.PageID{0xff}, Length: wire.WholePage})
	_, err := r.client.Call(context.Background(), addr, &wire.GetPagesReq{Ranges: over})
	if !isBadRequest(err) {
		t.Fatalf("over-cap range count: err = %v, want bad-request", err)
	}

	big := bytes.Repeat([]byte{0xab}, wire.MaxGetPagesBytes/2+1)
	p1, p2 := wire.PageID{1}, wire.PageID{2}
	r.call(t, addr, &wire.PutPageReq{Page: p1, Data: big})
	r.call(t, addr, &wire.PutPageReq{Page: p2, Data: big})
	one := r.call(t, addr, &wire.GetPagesReq{
		Ranges: []wire.PageRange{{Page: p1, Length: wire.WholePage}},
	})
	if got := one.(*wire.GetPagesResp).Data[0]; !bytes.Equal(got, big) {
		t.Fatalf("single over-half-cap page: got %d bytes, want %d", len(got), len(big))
	}
	_, err = r.client.Call(context.Background(), addr, &wire.GetPagesReq{
		Ranges: []wire.PageRange{
			{Page: p1, Length: wire.WholePage},
			{Page: p2, Length: wire.WholePage},
		},
	})
	if !isBadRequest(err) {
		t.Fatalf("over-cap response bytes: err = %v, want bad-request", err)
	}
}

func TestDeletePagesReclaimsAndIsIdempotent(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	addr := r.provs[0].Addr()
	keep := wire.PageID{1}
	gone := wire.PageID{2}
	r.call(t, addr, &wire.PutPageReq{Page: keep, Data: []byte("keep")})
	r.call(t, addr, &wire.PutPageReq{Page: gone, Data: []byte("gone")})

	// The batch may mix stored and never-stored ids: both are fine.
	r.call(t, addr, &wire.DeletePagesReq{Pages: []wire.PageID{gone, {9, 9}}})
	if _, err := r.client.Call(context.Background(), addr,
		&wire.GetPageReq{Page: gone, Length: wire.WholePage}); !wire.IsNotFound(err) {
		t.Fatalf("deleted page read: err = %v", err)
	}
	resp := r.call(t, addr, &wire.GetPageReq{Page: keep, Length: wire.WholePage})
	if !bytes.Equal(resp.(*wire.GetPageResp).Data, []byte("keep")) {
		t.Fatal("unrelated page affected by delete")
	}
	stats := r.call(t, addr, &wire.ProviderStatsReq{}).(*wire.ProviderStatsResp)
	if stats.Pages != 1 || stats.Bytes != 4 {
		t.Fatalf("stats after delete = %+v", stats)
	}
	// Idempotent: a retried sweep changes nothing.
	r.call(t, addr, &wire.DeletePagesReq{Pages: []wire.PageID{gone}})

	if _, err := r.client.Call(context.Background(), addr,
		&wire.DeletePagesReq{Pages: []wire.PageID{{}}}); wire.CodeOf(err) != wire.CodeBadRequest {
		t.Fatal("zero page id accepted by delete")
	}
}

func TestPutZeroPageIDRejected(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	_, err := r.client.Call(context.Background(), r.provs[0].Addr(),
		&wire.PutPageReq{Data: []byte("x")})
	if wire.CodeOf(err) != wire.CodeBadRequest {
		t.Fatalf("err = %v, want bad-request", err)
	}
}

func TestRoundRobinAllocationIsEven(t *testing.T) {
	r := newRig(t, 5, ManagerConfig{Strategy: RoundRobin})
	resp := r.call(t, "manager", &wire.AllocateReq{N: 100})
	addrs := resp.(*wire.AllocateResp).Addrs
	if len(addrs) != 100 {
		t.Fatalf("allocated %d", len(addrs))
	}
	counts := map[string]int{}
	for _, a := range addrs {
		counts[a]++
	}
	if len(counts) != 5 {
		t.Fatalf("spread over %d providers, want 5", len(counts))
	}
	for a, c := range counts {
		if c != 20 {
			t.Errorf("provider %s got %d pages, want exactly 20", a, c)
		}
	}
}

func TestRandomAllocationCoversAll(t *testing.T) {
	r := newRig(t, 4, ManagerConfig{Strategy: Random, Seed: 42})
	resp := r.call(t, "manager", &wire.AllocateReq{N: 400})
	counts := map[string]int{}
	for _, a := range resp.(*wire.AllocateResp).Addrs {
		counts[a]++
	}
	if len(counts) != 4 {
		t.Fatalf("random spread over %d providers, want 4", len(counts))
	}
	for a, c := range counts {
		if c < 50 || c > 150 {
			t.Errorf("provider %s share %d is implausible for uniform", a, c)
		}
	}
}

func TestLeastLoadedPrefersEmpty(t *testing.T) {
	r := newRig(t, 3, ManagerConfig{Strategy: LeastLoaded})
	// Preload provider 0 heavily, then heartbeat so the manager knows.
	addr0 := r.provs[0].Addr()
	gen := wire.NewPageIDGen()
	for i := 0; i < 30; i++ {
		r.call(t, addr0, &wire.PutPageReq{Page: gen.Next(), Data: []byte("x")})
	}
	time.Sleep(30 * time.Millisecond) // allow a heartbeat cycle

	resp := r.call(t, "manager", &wire.AllocateReq{N: 20})
	counts := map[string]int{}
	for _, a := range resp.(*wire.AllocateResp).Addrs {
		counts[a]++
	}
	if counts[addr0] != 0 {
		t.Errorf("least-loaded sent %d pages to the loaded provider", counts[addr0])
	}
}

func TestAllocateNoProviders(t *testing.T) {
	r := newRig(t, 0, ManagerConfig{})
	_, err := r.client.Call(context.Background(), "manager", &wire.AllocateReq{N: 1})
	if wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("err = %v, want unavailable", err)
	}
}

func TestReRegisterSameAddrKeepsOneEntry(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	addr := r.provs[0].Addr()
	id1 := r.call(t, "manager", &wire.RegisterReq{Addr: addr, Weight: 1}).(*wire.RegisterResp).ID
	id2 := r.call(t, "manager", &wire.RegisterReq{Addr: addr, Weight: 2}).(*wire.RegisterResp).ID
	if id1 != id2 {
		t.Fatalf("re-register changed id: %d -> %d", id1, id2)
	}
	if n := r.manager.ProviderCount(); n != 1 {
		t.Fatalf("provider count = %d", n)
	}
}

func TestHeartbeatUpdatesLoad(t *testing.T) {
	r := newRig(t, 2, ManagerConfig{})
	addr0 := r.provs[0].Addr()
	gen := wire.NewPageIDGen()
	for i := 0; i < 7; i++ {
		r.call(t, addr0, &wire.PutPageReq{Page: gen.Next(), Data: []byte("abc")})
	}
	time.Sleep(30 * time.Millisecond)
	resp := r.call(t, "manager", &wire.ListProvidersReq{})
	var found bool
	for _, p := range resp.(*wire.ListProvidersResp).Providers {
		if p.Addr == addr0 {
			found = true
			if p.Pages != 7 {
				t.Errorf("manager sees %d pages for %s, want 7", p.Pages, addr0)
			}
		}
	}
	if !found {
		t.Fatal("provider missing from list")
	}
}

func TestHeartbeatUnknownIDRequestsReRegister(t *testing.T) {
	r := newRig(t, 1, ManagerConfig{})
	resp := r.call(t, "manager", &wire.HeartbeatReq{ID: 9999})
	if resp.(*wire.HeartbeatResp).Known {
		t.Fatal("unknown id acknowledged")
	}
}

func TestExpiryDropsSilentProviders(t *testing.T) {
	// Virtual clock so expiry is deterministic. The server must run over
	// simnet: blocking on an in-process transport would be invisible to
	// the virtual clock and wedge the simulation.
	clock := vclock.NewVirtual(0)
	net := simnet.New(clock, simnet.Config{})
	err := clock.Run(func() {
		mln, err := net.Host("mgr").Listen("manager")
		if err != nil {
			t.Error(err)
			return
		}
		mgr := ServeManager(mln, ManagerConfig{Sched: clock, Expiry: time.Second})
		defer mgr.Close()
		mgr.register("dead-provider:1", 1)
		if n := mgr.ProviderCount(); n != 1 {
			t.Errorf("count = %d, want 1", n)
		}
		clock.Sleep(2 * time.Second)
		if n := mgr.ProviderCount(); n != 0 {
			t.Errorf("count after expiry = %d, want 0", n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		RoundRobin: "round-robin", Random: "random", LeastLoaded: "least-loaded", Strategy(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestAllocateReplicasDistinct(t *testing.T) {
	r := newRig(t, 5, ManagerConfig{})
	const pages, copies = 40, 3
	resp := r.call(t, "manager", &wire.AllocateReq{N: pages, Copies: copies})
	addrs := resp.(*wire.AllocateResp).Addrs
	if len(addrs) != pages*copies {
		t.Fatalf("got %d addrs, want %d", len(addrs), pages*copies)
	}
	for p := 0; p < pages; p++ {
		group := addrs[p*copies : (p+1)*copies]
		seen := map[string]bool{}
		for _, a := range group {
			if seen[a] {
				t.Fatalf("page %d: duplicate replica provider %s in %v", p, a, group)
			}
			seen[a] = true
		}
	}
}

func TestAllocateReplicasDistinctRandomStrategy(t *testing.T) {
	r := newRig(t, 4, ManagerConfig{Strategy: Random, Seed: 42})
	resp := r.call(t, "manager", &wire.AllocateReq{N: 30, Copies: 2})
	addrs := resp.(*wire.AllocateResp).Addrs
	for p := 0; p < 30; p++ {
		if addrs[2*p] == addrs[2*p+1] {
			t.Fatalf("page %d: both replicas on %s", p, addrs[2*p])
		}
	}
}

func TestAllocateMoreCopiesThanProviders(t *testing.T) {
	r := newRig(t, 2, ManagerConfig{})
	resp := r.call(t, "manager", &wire.AllocateReq{N: 3, Copies: 5})
	addrs := resp.(*wire.AllocateResp).Addrs
	if len(addrs) != 15 {
		t.Fatalf("got %d addrs, want 15", len(addrs))
	}
	// Degraded mode: groups contain repeats, but allocation must not fail
	// and must still involve both providers.
	uniq := map[string]bool{}
	for _, a := range addrs {
		uniq[a] = true
	}
	if len(uniq) != 2 {
		t.Fatalf("allocation used %d providers, want 2", len(uniq))
	}
}

func TestAllocateEvenDistributionWithReplicas(t *testing.T) {
	r := newRig(t, 4, ManagerConfig{})
	resp := r.call(t, "manager", &wire.AllocateReq{N: 100, Copies: 2})
	counts := map[string]int{}
	for _, a := range resp.(*wire.AllocateResp).Addrs {
		counts[a]++
	}
	// 200 placements over 4 providers: round-robin keeps them even.
	for a, n := range counts {
		if n != 50 {
			t.Fatalf("provider %s got %d placements, want 50 (counts=%v)", a, n, counts)
		}
	}
}

func TestHeartbeatsDoNotSerializeBehindAllocate(t *testing.T) {
	// The striped registry's contract: heartbeats from many providers
	// race Allocate/list/expiry without data races or lost updates.
	// Run with -race to make this meaningful.
	r := newRig(t, 0, ManagerConfig{Strategy: LeastLoaded, Expiry: time.Hour})
	const providers = 24
	ids := make([]uint32, providers)
	for i := range ids {
		ids[i] = r.manager.register(fmt.Sprintf("prov-%d:1", i), 1)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(w*200+i)%providers]
				if !r.manager.heartbeat(&wire.HeartbeatReq{ID: id, Pages: uint64(i), Bytes: uint64(i) * 10}) {
					t.Errorf("heartbeat for %d unknown", id)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := r.manager.Allocate(8, 2); err != nil {
				t.Errorf("allocate: %v", err)
				return
			}
			r.manager.list()
			r.manager.ProviderCount()
		}
	}()
	wg.Wait()
	if n := r.manager.ProviderCount(); n != providers {
		t.Fatalf("provider count = %d, want %d", n, providers)
	}
}

func TestProviderOwnsPageLog(t *testing.T) {
	dir := t.TempDir()
	net := transport.NewInproc()
	defer net.Close()
	sched := vclock.NewReal()
	serve := func() *Provider {
		ln, err := net.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		p, err := Serve(ln, Config{
			Sched:     sched,
			PageLog:   filepath.Join(dir, "pages.log"),
			PageStore: pagestore.DiskOptions{GroupCommit: true, SegmentBytes: 4096},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := serve()
	id := wire.PageID{7, 7, 7}
	if err := p.Store().Put(id, []byte("durable page")); err != nil {
		t.Fatal(err)
	}
	p.Close()
	// Close must have released the log: reopening the same path works
	// and the page survived.
	p2 := serve()
	defer p2.Close()
	got, err := p2.Store().Get(id, 0, wire.WholePage)
	if err != nil || string(got) != "durable page" {
		t.Fatalf("page after provider restart: %q, %v", got, err)
	}
}
