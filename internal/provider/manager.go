package provider

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/rpc"
	"blobseer/internal/transport"
	"blobseer/internal/vclock"
	"blobseer/internal/wire"
)

// Strategy selects how the provider manager spreads pages over providers.
type Strategy int

// Allocation strategies. The paper requires "an even distribution of
// pages among providers" (§3.1); RoundRobin achieves exactly that and is
// the default. The alternatives exist for the ablation benchmarks.
const (
	// RoundRobin cycles through providers in registration order.
	RoundRobin Strategy = iota
	// Random picks providers uniformly at random.
	Random
	// LeastLoaded picks the providers currently holding the fewest
	// pages, counting pages allocated in this cycle.
	LeastLoaded
)

// String names the strategy for logs and benchmark tables.
func (s Strategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case Random:
		return "random"
	case LeastLoaded:
		return "least-loaded"
	default:
		return "unknown"
	}
}

// ManagerConfig configures the provider manager.
type ManagerConfig struct {
	// Sched drives expiry checks; defaults to the real clock.
	Sched vclock.Scheduler
	// Strategy is the page distribution policy (default RoundRobin).
	Strategy Strategy
	// Expiry drops providers that have not heartbeated for this long.
	// Zero disables expiry (useful under the simulated clock where
	// providers never crash unless the harness kills them).
	Expiry time.Duration
	// Seed makes the Random strategy reproducible.
	Seed int64
}

// registryStripes shards the id-to-entry lookup map, the same pattern as
// the version manager's blob registry: heartbeats — the hot, frequent
// path once hundreds of providers beat every few seconds — take only
// their stripe's read lock plus atomic stores, so they never serialize
// behind an Allocate planning placements.
const registryStripes = 16

// Manager is the provider manager service: the directory of live data
// providers and the page placement policy.
//
// Concurrency regime: the entry registry is striped with RW locks and
// each entry's mutable load statistics are atomics, so heartbeats touch
// nothing global. Membership and placement (registration order,
// round-robin cursor, RNG, in-cycle counts) stay behind a single
// allocMu — allocation is inherently a global decision — which is taken
// only by register, allocate, list and expiry. Lock order: allocMu,
// then a stripe lock; a stripe lock is never held while acquiring
// allocMu.
type Manager struct {
	cfg   ManagerConfig
	sched vclock.Scheduler
	srv   *rpc.Server

	stripes [registryStripes]registryStripe

	allocMu sync.Mutex
	byAddr  map[string]uint32
	order   []uint32 // registration order, for round-robin
	nextID  uint32
	rr      int
	rng     *rand.Rand
	// inCycle counts pages handed out per provider since the last
	// heartbeat refresh; LeastLoaded uses it to spread within a burst.
	inCycle map[uint32]uint64
}

type registryStripe struct {
	mu      sync.RWMutex
	entries map[uint32]*entry
}

// entry is one registered provider. addr and id are immutable after
// creation; the load statistics are atomics written by heartbeats
// without any manager-wide lock.
type entry struct {
	id       uint32
	addr     string
	weight   atomic.Uint32
	pages    atomic.Uint64
	bytes    atomic.Uint64
	lastSeen atomic.Int64 // sched.Now(), as nanoseconds
}

// ServeManager starts the provider manager on ln.
func ServeManager(ln transport.Listener, cfg ManagerConfig) *Manager {
	if cfg.Sched == nil {
		cfg.Sched = vclock.NewReal()
	}
	m := &Manager{
		cfg:     cfg,
		sched:   cfg.Sched,
		byAddr:  make(map[string]uint32),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		inCycle: make(map[uint32]uint64),
	}
	for i := range m.stripes {
		m.stripes[i].entries = make(map[uint32]*entry)
	}
	m.srv = rpc.Serve(ln, cfg.Sched, m.mux())
	return m
}

// Addr returns the manager's service address.
func (m *Manager) Addr() string { return m.srv.Addr() }

// Close stops the service.
func (m *Manager) Close() { m.srv.Close() }

func (m *Manager) stripe(id uint32) *registryStripe {
	return &m.stripes[id%registryStripes]
}

// lookup returns the entry for id, or nil. Safe without allocMu.
func (m *Manager) lookup(id uint32) *entry {
	s := m.stripe(id)
	s.mu.RLock()
	e := s.entries[id]
	s.mu.RUnlock()
	return e
}

// ProviderCount returns the number of live providers.
func (m *Manager) ProviderCount() int {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	m.expireLocked()
	return len(m.order)
}

func (m *Manager) mux() *rpc.Mux {
	mux := rpc.NewMux()
	mux.Register(wire.KindPingReq, func(_ context.Context, msg wire.Msg) (wire.Msg, error) {
		return &wire.PingResp{Nonce: msg.(*wire.PingReq).Nonce}, nil
	})
	mux.Register(wire.KindRegisterReq, func(_ context.Context, msg wire.Msg) (wire.Msg, error) {
		req := msg.(*wire.RegisterReq)
		if req.Addr == "" {
			return nil, wire.NewError(wire.CodeBadRequest, "empty provider address")
		}
		return &wire.RegisterResp{ID: m.register(req.Addr, req.Weight)}, nil
	})
	mux.Register(wire.KindHeartbeatReq, func(_ context.Context, msg wire.Msg) (wire.Msg, error) {
		req := msg.(*wire.HeartbeatReq)
		return &wire.HeartbeatResp{Known: m.heartbeat(req)}, nil
	})
	mux.Register(wire.KindAllocateReq, func(_ context.Context, msg wire.Msg) (wire.Msg, error) {
		req := msg.(*wire.AllocateReq)
		addrs, err := m.Allocate(int(req.N), int(req.Copies))
		if err != nil {
			return nil, err
		}
		return &wire.AllocateResp{Addrs: addrs}, nil
	})
	mux.Register(wire.KindListProvidersReq, func(context.Context, wire.Msg) (wire.Msg, error) {
		return m.list(), nil
	})
	return mux
}

func (m *Manager) register(addr string, weight uint32) uint32 {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	if id, ok := m.byAddr[addr]; ok {
		// byAddr and the stripes mutate together under allocMu, so the
		// entry is always present.
		e := m.lookup(id)
		e.lastSeen.Store(int64(m.sched.Now()))
		e.weight.Store(weight)
		return id
	}
	m.nextID++
	id := m.nextID
	e := &entry{id: id, addr: addr}
	e.weight.Store(weight)
	e.lastSeen.Store(int64(m.sched.Now()))
	s := m.stripe(id)
	s.mu.Lock()
	s.entries[id] = e
	s.mu.Unlock()
	m.byAddr[addr] = id
	m.order = append(m.order, id)
	return id
}

// heartbeat refreshes one provider's liveness and load. It is the hot
// path under many providers and deliberately takes no manager-wide
// lock: a stripe read lock around the entry update, atomics for the
// fields. Holding the stripe lock across the stores means expiry —
// which re-checks lastSeen under the stripe write lock — can never
// delete an entry whose beat was just acknowledged.
func (m *Manager) heartbeat(req *wire.HeartbeatReq) bool {
	s := m.stripe(req.ID)
	s.mu.RLock()
	e := s.entries[req.ID]
	if e == nil {
		s.mu.RUnlock()
		return false
	}
	e.pages.Store(req.Pages)
	e.bytes.Store(req.Bytes)
	e.lastSeen.Store(int64(m.sched.Now()))
	s.mu.RUnlock()
	if m.cfg.Strategy == LeastLoaded {
		// Fresh ground truth supersedes the in-cycle estimates. Only
		// LeastLoaded keeps them, so the other strategies' heartbeats
		// stay entirely off the placement lock.
		m.allocMu.Lock()
		delete(m.inCycle, req.ID)
		m.allocMu.Unlock()
	}
	return true
}

// Allocate picks providers for n pages with copies replicas each and
// returns n*copies addresses, page i's replicas at positions
// [i*copies, (i+1)*copies). Replicas of one page land on distinct
// providers whenever at least copies providers are live; otherwise the
// group repeats addresses rather than failing (degraded but writable,
// matching the availability-first behaviour of the paper's testbed). When
// n exceeds the provider count, different pages share providers, exactly
// like the paper's experiments where a blob has far more pages than there
// are providers.
func (m *Manager) Allocate(n, copies int) ([]string, error) {
	if n < 0 {
		return nil, wire.NewError(wire.CodeBadRequest, "negative page count")
	}
	if copies < 1 {
		copies = 1
	}
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	m.expireLocked()
	if len(m.order) == 0 {
		return nil, wire.NewError(wire.CodeUnavailable, "no data providers registered")
	}
	// pickLocked returns one provider id by the configured strategy.
	pickLocked := func() uint32 {
		switch m.cfg.Strategy {
		case Random:
			return m.order[m.rng.Intn(len(m.order))]
		case LeastLoaded:
			best := uint32(0)
			var bestLoad uint64
			for _, id := range m.order {
				load := m.lookup(id).pages.Load() + m.inCycle[id]
				if best == 0 || load < bestLoad {
					best, bestLoad = id, load
				}
			}
			m.inCycle[best]++
			return best
		default: // RoundRobin
			id := m.order[m.rr%len(m.order)]
			m.rr++
			return id
		}
	}
	addrs := make([]string, 0, n*copies)
	group := make(map[uint32]struct{}, copies)
	for i := 0; i < n; i++ {
		clear(group)
		for c := 0; c < copies; c++ {
			id := pickLocked()
			if _, dup := group[id]; dup && copies <= len(m.order) {
				// Retry for a distinct provider; bounded so a pathological
				// strategy (Random on a tiny cluster) cannot spin.
				for retry := 0; retry < 4*len(m.order); retry++ {
					id = pickLocked()
					if _, dup = group[id]; !dup {
						break
					}
				}
			}
			group[id] = struct{}{}
			addrs = append(addrs, m.lookup(id).addr)
		}
	}
	return addrs, nil
}

func (m *Manager) list() *wire.ListProvidersResp {
	m.allocMu.Lock()
	defer m.allocMu.Unlock()
	m.expireLocked()
	resp := &wire.ListProvidersResp{}
	for _, id := range m.order {
		e := m.lookup(id)
		resp.Providers = append(resp.Providers, wire.ProviderInfo{
			Addr: e.addr, Pages: e.pages.Load(), Bytes: e.bytes.Load(),
		})
	}
	return resp
}

// expireLocked drops providers whose heartbeats stopped. Called with
// allocMu held; stripe locks nest inside it.
func (m *Manager) expireLocked() {
	if m.cfg.Expiry <= 0 {
		return
	}
	cutoff := int64(m.sched.Now()) - int64(m.cfg.Expiry)
	keep := m.order[:0]
	for _, id := range m.order {
		e := m.lookup(id)
		expired := false
		if e.lastSeen.Load() < cutoff {
			s := m.stripe(id)
			s.mu.Lock()
			// Re-check under the stripe write lock: a heartbeat holds the
			// read lock across its stores, so a beat acknowledged before
			// this point is visible here and saves the entry.
			if e.lastSeen.Load() < cutoff {
				delete(s.entries, id)
				expired = true
			}
			s.mu.Unlock()
		}
		if expired {
			delete(m.byAddr, e.addr)
			delete(m.inCycle, id)
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
	sort.Slice(m.order, func(i, j int) bool { return m.order[i] < m.order[j] })
}
