package wire

import (
	"errors"
	"fmt"
)

// ErrCode is a stable protocol-level error code carried in ErrorResp.
type ErrCode uint16

// Protocol error codes. The numbering is part of the protocol; append only.
const (
	CodeUnknown      ErrCode = iota // unclassified server-side failure
	CodeNotFound                    // blob, page or key does not exist
	CodeNotPublished                // the requested snapshot version is not yet published
	CodeOutOfBounds                 // offset/size beyond the snapshot size
	CodeBadRequest                  // malformed or semantically invalid request
	CodeAborted                     // the update was aborted and cannot complete
	CodeExists                      // resource already exists
	CodeUnavailable                 // service cannot satisfy the request right now
)

var codeNames = map[ErrCode]string{
	CodeUnknown:      "unknown",
	CodeNotFound:     "not found",
	CodeNotPublished: "not published",
	CodeOutOfBounds:  "out of bounds",
	CodeBadRequest:   "bad request",
	CodeAborted:      "aborted",
	CodeExists:       "already exists",
	CodeUnavailable:  "unavailable",
}

// String returns the human-readable name of the code.
func (c ErrCode) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// Error is the Go-side representation of an ErrorResp. It is produced by
// the rpc layer when a call is answered with an error and can be matched
// with errors.As / the Is* helpers below.
type Error struct {
	Code ErrCode
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg == "" {
		return "blobseer: " + e.Code.String()
	}
	return fmt.Sprintf("blobseer: %s: %s", e.Code, e.Msg)
}

// NewError builds a typed protocol error.
func NewError(code ErrCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the protocol error code from err, or CodeUnknown if err
// is not a protocol error.
func CodeOf(err error) ErrCode {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeUnknown
}

// IsNotFound reports whether err is a protocol "not found" error.
func IsNotFound(err error) bool { return CodeOf(err) == CodeNotFound }

// IsNotPublished reports whether err is a protocol "not published" error.
func IsNotPublished(err error) bool { return CodeOf(err) == CodeNotPublished }

// IsOutOfBounds reports whether err is a protocol "out of bounds" error.
func IsOutOfBounds(err error) bool { return CodeOf(err) == CodeOutOfBounds }
