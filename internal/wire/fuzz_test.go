package wire

import (
	"bytes"
	"testing"
)

// gcKinds are the retention/GC message kinds introduced for the
// distributed page collector and the metadata (DHT) node collector.
// Their decoders face bytes from the network, so the fuzz target pins
// two properties on arbitrary input: no panics, and decode∘encode is a
// fixed point (a successful decode re-encodes to bytes that decode to
// the same message).
var gcKinds = []Kind{
	KindDeletePagesReq, KindDeletePagesResp,
	KindExpireReq, KindExpireResp,
	KindGCInfoReq, KindGCInfoResp,
	KindDHTDeleteReq, KindDHTDeleteResp,
}

func marshalBody(m Msg) []byte {
	w := NewWriter(64)
	m.MarshalTo(w)
	return append([]byte(nil), w.Bytes()...)
}

func FuzzDecodeGCWire(f *testing.F) {
	seed := []Msg{
		&DeletePagesReq{Pages: []PageID{{1, 2, 3}, {0xff}}},
		&DeletePagesResp{},
		&ExpireReq{Blob: 7, UpTo: 41},
		&ExpireResp{Floor: 42, Expired: []Version{3, 5, 41}},
		&GCInfoReq{Blob: 7},
		&GCInfoResp{
			OwnMin: 2, Floor: 42,
			Retained: VersionInfo{Version: 42, Size: 1 << 20},
			Expired:  []VersionInfo{{Version: 3, Size: 4096}, {Version: 5, Size: 0}},
		},
		&DHTDeleteReq{Keys: [][]byte{[]byte("node/key/1"), {0xff}, {}}},
		&DHTDeleteResp{Deleted: 17},
	}
	for _, m := range seed {
		f.Add(uint8(m.Kind()), marshalBody(m))
	}
	f.Add(uint8(KindDeletePagesReq), []byte{1, 0, 0, 0})
	f.Add(uint8(KindGCInfoResp), []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		k := Kind(kind)
		found := false
		for _, gk := range gcKinds {
			if k == gk {
				found = true
			}
		}
		if !found {
			return
		}
		checkDecodeFixedPoint(t, k, data)
	})
}

func checkDecodeFixedPoint(t *testing.T, k Kind, data []byte) {
	t.Helper()
	m, err := Decode(k, data)
	if err != nil {
		return
	}
	enc := marshalBody(m)
	m2, err := Decode(k, enc)
	if err != nil {
		t.Fatalf("re-decoding %v encoding of %+v: %v", k, m, err)
	}
	if enc2 := marshalBody(m2); !bytes.Equal(enc, enc2) {
		t.Fatalf("%v encoding not a fixed point: %x vs %x", k, enc, enc2)
	}
}

// FuzzDecodeWire seeds every wire kind with a populated message — the
// wirekinds analyzer (cmd/blobseer-vet) enforces that the seed list
// stays exhaustive as kinds are appended — and pins the same two
// properties as FuzzDecodeGCWire on the whole protocol surface: no
// decoder panics on arbitrary bytes, and decode∘encode is a fixed
// point.
func FuzzDecodeWire(f *testing.F) {
	pid := PageID{0xa, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0xb}
	seed := []Msg{
		&PingReq{Nonce: 7},
		&PingResp{Nonce: 7},
		&PutPageReq{Page: pid, Data: []byte("page-bytes")},
		&PutPageResp{},
		&GetPageReq{Page: pid, Offset: 64, Length: WholePage},
		&GetPageResp{Data: []byte{0xde, 0xad}},
		&HasPageReq{Page: pid},
		&HasPageResp{Found: true},
		&ProviderStatsReq{},
		&ProviderStatsResp{Pages: 3, Bytes: 1 << 16},
		&RegisterReq{Addr: "127.0.0.1:7000", Weight: 2},
		&RegisterResp{ID: 11},
		&HeartbeatReq{ID: 11, Pages: 5, Bytes: 640},
		&HeartbeatResp{Known: true},
		&AllocateReq{N: 4, Copies: 2},
		&AllocateResp{Addrs: []string{"a:1", "b:2", "", "c:3"}},
		&ListProvidersReq{},
		&ListProvidersResp{Providers: []ProviderInfo{{Addr: "a:1", Pages: 1, Bytes: 4096}}},
		&DHTPutReq{Key: []byte("k"), Value: []byte("v")},
		&DHTPutResp{},
		&DHTGetReq{Key: []byte("k")},
		&DHTGetResp{Found: true, Value: []byte("v")},
		&DHTMultiPutReq{Keys: [][]byte{[]byte("k1"), {}}, Values: [][]byte{[]byte("v1"), {0xff}}},
		&DHTMultiPutResp{},
		&DHTMultiGetReq{Keys: [][]byte{[]byte("k1"), []byte("k2")}},
		&DHTMultiGetResp{Found: []bool{true, false}, Values: [][]byte{[]byte("v1"), {}}},
		&DHTStatsReq{},
		&DHTStatsResp{Keys: 9, Bytes: 1 << 10},
		&CreateBlobReq{PageSize: 4096},
		&CreateBlobResp{Blob: 3},
		&BlobInfoReq{Blob: 3},
		&BlobInfoResp{PageSize: 4096, Lineage: Lineage{{Blob: 3, MinVersion: 2}, {Blob: 1, MinVersion: 0}}},
		&AssignReq{Blob: 3, Offset: 0, Size: 8192, Append: true},
		&AssignResp{
			Version: 4, Offset: 8192, NewSize: 16384, PrevSize: 8192,
			Published: 3, PublishedSize: 8192,
			InFlight: []UpdateDesc{{Version: 2, Offset: 0, Size: 4096}},
		},
		&CompleteReq{Blob: 3, Version: 4},
		&CompleteResp{},
		&AbortReq{Blob: 3, Version: 4},
		&AbortResp{},
		&RecentReq{Blob: 3},
		&RecentResp{Version: 4, Size: 16384},
		&SizeReq{Blob: 3, Version: 4},
		&SizeResp{Size: 16384},
		&SyncReq{Blob: 3, Version: 4},
		&SyncResp{},
		&BranchReq{Blob: 3, Version: 4},
		&BranchResp{NewBlob: 5},
		&ErrorResp{Code: CodeNotFound, Msg: "no such blob"},
		&DeletePagesReq{Pages: []PageID{pid}},
		&DeletePagesResp{},
		&ExpireReq{Blob: 3, UpTo: 2},
		&ExpireResp{Floor: 3, Expired: []Version{1, 2}},
		&GCInfoReq{Blob: 3},
		&GCInfoResp{
			OwnMin: 1, Floor: 3,
			Retained: VersionInfo{Version: 3, Size: 8192},
			Expired:  []VersionInfo{{Version: 1, Size: 4096}},
		},
		&DHTDeleteReq{Keys: [][]byte{[]byte("node/key")}},
		&DHTDeleteResp{Deleted: 1},
		&GetPagesReq{Ranges: []PageRange{
			{Page: pid, Offset: 0, Length: WholePage},
			{Page: PageID{1}, Offset: 128, Length: 64},
		}},
		&GetPagesResp{Found: []bool{true, false}, Data: [][]byte{{0xbe, 0xef}, {}}},
	}
	covered := make(map[Kind]bool)
	for _, m := range seed {
		covered[m.Kind()] = true
		f.Add(uint8(m.Kind()), marshalBody(m))
	}
	// The seed list must span the whole enum; a miss here means a kind
	// was appended without a seed (blobseer-vet flags the same gap).
	for k := KindInvalid + 1; k < kindMax; k++ {
		if !covered[k] {
			f.Fuzz(func(t *testing.T, _ uint8, _ []byte) {
				t.Fatalf("kind %v has no populated fuzz seed", k)
			})
			return
		}
	}
	// Truncated and empty bodies for a few structurally distinct kinds.
	f.Add(uint8(KindAssignResp), []byte{1, 2, 3})
	f.Add(uint8(KindDHTMultiPutReq), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(KindErrorResp), []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		checkDecodeFixedPoint(t, Kind(kind), data)
	})
}
