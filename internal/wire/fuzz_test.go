package wire

import (
	"bytes"
	"testing"
)

// gcKinds are the retention/GC message kinds introduced for the
// distributed page collector and the metadata (DHT) node collector.
// Their decoders face bytes from the network, so the fuzz target pins
// two properties on arbitrary input: no panics, and decode∘encode is a
// fixed point (a successful decode re-encodes to bytes that decode to
// the same message).
var gcKinds = []Kind{
	KindDeletePagesReq, KindDeletePagesResp,
	KindExpireReq, KindExpireResp,
	KindGCInfoReq, KindGCInfoResp,
	KindDHTDeleteReq, KindDHTDeleteResp,
}

func marshalBody(m Msg) []byte {
	w := NewWriter(64)
	m.MarshalTo(w)
	return append([]byte(nil), w.Bytes()...)
}

func FuzzDecodeGCWire(f *testing.F) {
	seed := []Msg{
		&DeletePagesReq{Pages: []PageID{{1, 2, 3}, {0xff}}},
		&DeletePagesResp{},
		&ExpireReq{Blob: 7, UpTo: 41},
		&ExpireResp{Floor: 42, Expired: []Version{3, 5, 41}},
		&GCInfoReq{Blob: 7},
		&GCInfoResp{
			OwnMin: 2, Floor: 42,
			Retained: VersionInfo{Version: 42, Size: 1 << 20},
			Expired:  []VersionInfo{{Version: 3, Size: 4096}, {Version: 5, Size: 0}},
		},
		&DHTDeleteReq{Keys: [][]byte{[]byte("node/key/1"), {0xff}, {}}},
		&DHTDeleteResp{Deleted: 17},
	}
	for _, m := range seed {
		f.Add(uint8(m.Kind()), marshalBody(m))
	}
	f.Add(uint8(KindDeletePagesReq), []byte{1, 0, 0, 0})
	f.Add(uint8(KindGCInfoResp), []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, data []byte) {
		k := Kind(kind)
		found := false
		for _, gk := range gcKinds {
			if k == gk {
				found = true
			}
		}
		if !found {
			return
		}
		m, err := Decode(k, data)
		if err != nil {
			return
		}
		enc := marshalBody(m)
		m2, err := Decode(k, enc)
		if err != nil {
			t.Fatalf("re-decoding %v encoding of %+v: %v", k, m, err)
		}
		if enc2 := marshalBody(m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("%v encoding not a fixed point: %x vs %x", k, enc, enc2)
		}
	})
}
