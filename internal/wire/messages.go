package wire

import "fmt"

// Kind is a message type code. Requests have odd codes, their responses the
// following even code; ErrorResp may answer any request.
type Kind uint8

// Message type codes. The numbering is part of the protocol; append only.
const (
	KindInvalid Kind = iota
	KindPingReq
	KindPingResp
	KindPutPageReq
	KindPutPageResp
	KindGetPageReq
	KindGetPageResp
	KindHasPageReq
	KindHasPageResp
	KindProviderStatsReq
	KindProviderStatsResp
	KindRegisterReq
	KindRegisterResp
	KindHeartbeatReq
	KindHeartbeatResp
	KindAllocateReq
	KindAllocateResp
	KindListProvidersReq
	KindListProvidersResp
	KindDHTPutReq
	KindDHTPutResp
	KindDHTGetReq
	KindDHTGetResp
	KindDHTMultiPutReq
	KindDHTMultiPutResp
	KindDHTMultiGetReq
	KindDHTMultiGetResp
	KindDHTStatsReq
	KindDHTStatsResp
	KindCreateBlobReq
	KindCreateBlobResp
	KindBlobInfoReq
	KindBlobInfoResp
	KindAssignReq
	KindAssignResp
	KindCompleteReq
	KindCompleteResp
	KindAbortReq
	KindAbortResp
	KindRecentReq
	KindRecentResp
	KindSizeReq
	KindSizeResp
	KindSyncReq
	KindSyncResp
	KindBranchReq
	KindBranchResp
	KindErrorResp
	// Retention/GC kinds postdate KindErrorResp; the append-only rule
	// outweighs the requests-odd convention above.
	KindDeletePagesReq
	KindDeletePagesResp
	KindExpireReq
	KindExpireResp
	KindGCInfoReq
	KindGCInfoResp
	KindDHTDeleteReq
	KindDHTDeleteResp
	// Batched page reads (read-path coalescing): one request carries
	// ranges from many pages held by the same provider.
	KindGetPagesReq
	KindGetPagesResp
	kindMax
)

var kindNames = [...]string{
	KindInvalid:           "Invalid",
	KindPingReq:           "PingReq",
	KindPingResp:          "PingResp",
	KindPutPageReq:        "PutPageReq",
	KindPutPageResp:       "PutPageResp",
	KindGetPageReq:        "GetPageReq",
	KindGetPageResp:       "GetPageResp",
	KindHasPageReq:        "HasPageReq",
	KindHasPageResp:       "HasPageResp",
	KindProviderStatsReq:  "ProviderStatsReq",
	KindProviderStatsResp: "ProviderStatsResp",
	KindRegisterReq:       "RegisterReq",
	KindRegisterResp:      "RegisterResp",
	KindHeartbeatReq:      "HeartbeatReq",
	KindHeartbeatResp:     "HeartbeatResp",
	KindAllocateReq:       "AllocateReq",
	KindAllocateResp:      "AllocateResp",
	KindListProvidersReq:  "ListProvidersReq",
	KindListProvidersResp: "ListProvidersResp",
	KindDHTPutReq:         "DHTPutReq",
	KindDHTPutResp:        "DHTPutResp",
	KindDHTGetReq:         "DHTGetReq",
	KindDHTGetResp:        "DHTGetResp",
	KindDHTMultiPutReq:    "DHTMultiPutReq",
	KindDHTMultiPutResp:   "DHTMultiPutResp",
	KindDHTMultiGetReq:    "DHTMultiGetReq",
	KindDHTMultiGetResp:   "DHTMultiGetResp",
	KindDHTStatsReq:       "DHTStatsReq",
	KindDHTStatsResp:      "DHTStatsResp",
	KindCreateBlobReq:     "CreateBlobReq",
	KindCreateBlobResp:    "CreateBlobResp",
	KindBlobInfoReq:       "BlobInfoReq",
	KindBlobInfoResp:      "BlobInfoResp",
	KindAssignReq:         "AssignReq",
	KindAssignResp:        "AssignResp",
	KindCompleteReq:       "CompleteReq",
	KindCompleteResp:      "CompleteResp",
	KindAbortReq:          "AbortReq",
	KindAbortResp:         "AbortResp",
	KindRecentReq:         "RecentReq",
	KindRecentResp:        "RecentResp",
	KindSizeReq:           "SizeReq",
	KindSizeResp:          "SizeResp",
	KindSyncReq:           "SyncReq",
	KindSyncResp:          "SyncResp",
	KindBranchReq:         "BranchReq",
	KindBranchResp:        "BranchResp",
	KindErrorResp:         "ErrorResp",
	KindDeletePagesReq:    "DeletePagesReq",
	KindDeletePagesResp:   "DeletePagesResp",
	KindExpireReq:         "ExpireReq",
	KindExpireResp:        "ExpireResp",
	KindGCInfoReq:         "GCInfoReq",
	KindGCInfoResp:        "GCInfoResp",
	KindDHTDeleteReq:      "DHTDeleteReq",
	KindDHTDeleteResp:     "DHTDeleteResp",
	KindGetPagesReq:       "GetPagesReq",
	KindGetPagesResp:      "GetPagesResp",
}

// String returns the symbolic name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Msg is implemented by every protocol message.
type Msg interface {
	Kind() Kind
	// MarshalTo appends the message body (excluding kind) to w.
	MarshalTo(w *Writer)
	// unmarshal decodes the message body from r.
	unmarshal(r *Reader)
}

// Decode decodes a message body of the given kind.
func Decode(k Kind, body []byte) (Msg, error) {
	m := New(k)
	if m == nil {
		return nil, fmt.Errorf("wire: unknown message kind %d", uint8(k))
	}
	r := NewReader(body)
	m.unmarshal(r)
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", k, err)
	}
	return m, nil
}

// New returns a zero message of the given kind, or nil if unknown.
func New(k Kind) Msg {
	switch k {
	case KindPingReq:
		return &PingReq{}
	case KindPingResp:
		return &PingResp{}
	case KindPutPageReq:
		return &PutPageReq{}
	case KindPutPageResp:
		return &PutPageResp{}
	case KindGetPageReq:
		return &GetPageReq{}
	case KindGetPageResp:
		return &GetPageResp{}
	case KindHasPageReq:
		return &HasPageReq{}
	case KindHasPageResp:
		return &HasPageResp{}
	case KindProviderStatsReq:
		return &ProviderStatsReq{}
	case KindProviderStatsResp:
		return &ProviderStatsResp{}
	case KindRegisterReq:
		return &RegisterReq{}
	case KindRegisterResp:
		return &RegisterResp{}
	case KindHeartbeatReq:
		return &HeartbeatReq{}
	case KindHeartbeatResp:
		return &HeartbeatResp{}
	case KindAllocateReq:
		return &AllocateReq{}
	case KindAllocateResp:
		return &AllocateResp{}
	case KindListProvidersReq:
		return &ListProvidersReq{}
	case KindListProvidersResp:
		return &ListProvidersResp{}
	case KindDHTPutReq:
		return &DHTPutReq{}
	case KindDHTPutResp:
		return &DHTPutResp{}
	case KindDHTGetReq:
		return &DHTGetReq{}
	case KindDHTGetResp:
		return &DHTGetResp{}
	case KindDHTMultiPutReq:
		return &DHTMultiPutReq{}
	case KindDHTMultiPutResp:
		return &DHTMultiPutResp{}
	case KindDHTMultiGetReq:
		return &DHTMultiGetReq{}
	case KindDHTMultiGetResp:
		return &DHTMultiGetResp{}
	case KindDHTStatsReq:
		return &DHTStatsReq{}
	case KindDHTStatsResp:
		return &DHTStatsResp{}
	case KindCreateBlobReq:
		return &CreateBlobReq{}
	case KindCreateBlobResp:
		return &CreateBlobResp{}
	case KindBlobInfoReq:
		return &BlobInfoReq{}
	case KindBlobInfoResp:
		return &BlobInfoResp{}
	case KindAssignReq:
		return &AssignReq{}
	case KindAssignResp:
		return &AssignResp{}
	case KindCompleteReq:
		return &CompleteReq{}
	case KindCompleteResp:
		return &CompleteResp{}
	case KindAbortReq:
		return &AbortReq{}
	case KindAbortResp:
		return &AbortResp{}
	case KindRecentReq:
		return &RecentReq{}
	case KindRecentResp:
		return &RecentResp{}
	case KindSizeReq:
		return &SizeReq{}
	case KindSizeResp:
		return &SizeResp{}
	case KindSyncReq:
		return &SyncReq{}
	case KindSyncResp:
		return &SyncResp{}
	case KindBranchReq:
		return &BranchReq{}
	case KindBranchResp:
		return &BranchResp{}
	case KindErrorResp:
		return &ErrorResp{}
	case KindDeletePagesReq:
		return &DeletePagesReq{}
	case KindDeletePagesResp:
		return &DeletePagesResp{}
	case KindExpireReq:
		return &ExpireReq{}
	case KindExpireResp:
		return &ExpireResp{}
	case KindGCInfoReq:
		return &GCInfoReq{}
	case KindGCInfoResp:
		return &GCInfoResp{}
	case KindDHTDeleteReq:
		return &DHTDeleteReq{}
	case KindDHTDeleteResp:
		return &DHTDeleteResp{}
	case KindGetPagesReq:
		return &GetPagesReq{}
	case KindGetPagesResp:
		return &GetPagesResp{}
	}
	return nil
}

// ---------------------------------------------------------------- ping

// PingReq checks liveness; the peer echoes Nonce back.
type PingReq struct{ Nonce uint64 }

// Kind implements Msg.
func (*PingReq) Kind() Kind { return KindPingReq }

// MarshalTo implements Msg.
func (m *PingReq) MarshalTo(w *Writer) { w.Uint64(m.Nonce) }
func (m *PingReq) unmarshal(r *Reader) { m.Nonce = r.Uint64() }

// PingResp answers PingReq.
type PingResp struct{ Nonce uint64 }

// Kind implements Msg.
func (*PingResp) Kind() Kind { return KindPingResp }

// MarshalTo implements Msg.
func (m *PingResp) MarshalTo(w *Writer) { w.Uint64(m.Nonce) }
func (m *PingResp) unmarshal(r *Reader) { m.Nonce = r.Uint64() }

// ------------------------------------------------------- data provider

// PutPageReq stores one immutable page under a globally unique id.
type PutPageReq struct {
	Page PageID
	Data []byte
}

// Kind implements Msg.
func (*PutPageReq) Kind() Kind { return KindPutPageReq }

// MarshalTo implements Msg.
func (m *PutPageReq) MarshalTo(w *Writer) {
	w.Raw(m.Page[:])
	w.Bytes32(m.Data)
}

func (m *PutPageReq) unmarshal(r *Reader) {
	copy(m.Page[:], r.Raw(16))
	m.Data = r.Bytes32Copy()
}

// PutPageResp acknowledges PutPageReq.
type PutPageResp struct{}

// Kind implements Msg.
func (*PutPageResp) Kind() Kind { return KindPutPageResp }

// MarshalTo implements Msg.
func (m *PutPageResp) MarshalTo(*Writer) {}
func (m *PutPageResp) unmarshal(*Reader) {}

// GetPageReq reads Length bytes starting at Offset within a page.
// Length == WholePage requests the entire page.
type GetPageReq struct {
	Page   PageID
	Offset uint32
	Length uint32
}

// WholePage as GetPageReq.Length requests the full page contents.
const WholePage = ^uint32(0)

// Kind implements Msg.
func (*GetPageReq) Kind() Kind { return KindGetPageReq }

// MarshalTo implements Msg.
func (m *GetPageReq) MarshalTo(w *Writer) {
	w.Raw(m.Page[:])
	w.Uint32(m.Offset)
	w.Uint32(m.Length)
}

func (m *GetPageReq) unmarshal(r *Reader) {
	copy(m.Page[:], r.Raw(16))
	m.Offset = r.Uint32()
	m.Length = r.Uint32()
}

// GetPageResp carries the requested page bytes.
type GetPageResp struct{ Data []byte }

// Kind implements Msg.
func (*GetPageResp) Kind() Kind { return KindGetPageResp }

// MarshalTo implements Msg.
func (m *GetPageResp) MarshalTo(w *Writer) { w.Bytes32(m.Data) }
func (m *GetPageResp) unmarshal(r *Reader) { m.Data = r.Bytes32Copy() }

// HasPageReq asks whether the provider stores a page.
type HasPageReq struct{ Page PageID }

// Kind implements Msg.
func (*HasPageReq) Kind() Kind { return KindHasPageReq }

// MarshalTo implements Msg.
func (m *HasPageReq) MarshalTo(w *Writer) { w.Raw(m.Page[:]) }
func (m *HasPageReq) unmarshal(r *Reader) { copy(m.Page[:], r.Raw(16)) }

// HasPageResp answers HasPageReq.
type HasPageResp struct{ Found bool }

// Kind implements Msg.
func (*HasPageResp) Kind() Kind { return KindHasPageResp }

// MarshalTo implements Msg.
func (m *HasPageResp) MarshalTo(w *Writer) { w.Bool(m.Found) }
func (m *HasPageResp) unmarshal(r *Reader) { m.Found = r.Bool() }

// ProviderStatsReq asks a data provider for storage statistics.
type ProviderStatsReq struct{}

// Kind implements Msg.
func (*ProviderStatsReq) Kind() Kind { return KindProviderStatsReq }

// MarshalTo implements Msg.
func (m *ProviderStatsReq) MarshalTo(*Writer) {}
func (m *ProviderStatsReq) unmarshal(*Reader) {}

// ProviderStatsResp reports a data provider's storage statistics.
type ProviderStatsResp struct {
	Pages uint64
	Bytes uint64
}

// Kind implements Msg.
func (*ProviderStatsResp) Kind() Kind { return KindProviderStatsResp }

// MarshalTo implements Msg.
func (m *ProviderStatsResp) MarshalTo(w *Writer) {
	w.Uint64(m.Pages)
	w.Uint64(m.Bytes)
}

func (m *ProviderStatsResp) unmarshal(r *Reader) {
	m.Pages = r.Uint64()
	m.Bytes = r.Uint64()
}

// ----------------------------------------------------- provider manager

// RegisterReq announces a (re)joining data provider to the provider
// manager. Addr is the address clients should dial to reach it.
type RegisterReq struct {
	Addr   string
	Weight uint32
}

// Kind implements Msg.
func (*RegisterReq) Kind() Kind { return KindRegisterReq }

// MarshalTo implements Msg.
func (m *RegisterReq) MarshalTo(w *Writer) {
	w.String(m.Addr)
	w.Uint32(m.Weight)
}

func (m *RegisterReq) unmarshal(r *Reader) {
	m.Addr = r.String()
	m.Weight = r.Uint32()
}

// RegisterResp acknowledges registration with the manager-local id.
type RegisterResp struct{ ID uint32 }

// Kind implements Msg.
func (*RegisterResp) Kind() Kind { return KindRegisterResp }

// MarshalTo implements Msg.
func (m *RegisterResp) MarshalTo(w *Writer) { w.Uint32(m.ID) }
func (m *RegisterResp) unmarshal(r *Reader) { m.ID = r.Uint32() }

// HeartbeatReq refreshes a provider's liveness and load figures.
type HeartbeatReq struct {
	ID    uint32
	Pages uint64
	Bytes uint64
}

// Kind implements Msg.
func (*HeartbeatReq) Kind() Kind { return KindHeartbeatReq }

// MarshalTo implements Msg.
func (m *HeartbeatReq) MarshalTo(w *Writer) {
	w.Uint32(m.ID)
	w.Uint64(m.Pages)
	w.Uint64(m.Bytes)
}

func (m *HeartbeatReq) unmarshal(r *Reader) {
	m.ID = r.Uint32()
	m.Pages = r.Uint64()
	m.Bytes = r.Uint64()
}

// HeartbeatResp acknowledges a heartbeat. Known=false instructs the
// provider to re-register (the manager restarted or expired it).
type HeartbeatResp struct{ Known bool }

// Kind implements Msg.
func (*HeartbeatResp) Kind() Kind { return KindHeartbeatResp }

// MarshalTo implements Msg.
func (m *HeartbeatResp) MarshalTo(w *Writer) { w.Bool(m.Known) }
func (m *HeartbeatResp) unmarshal(r *Reader) { m.Known = r.Bool() }

// AllocateReq asks the provider manager for N page providers chosen by
// its distribution strategy (one per page to be stored, §3.3). Copies
// requests that many replicas per page — on distinct providers when the
// cluster is large enough — for the replication extension; 0 or 1 means
// the paper's single-copy layout.
type AllocateReq struct {
	N      uint32
	Copies uint32
}

// Kind implements Msg.
func (*AllocateReq) Kind() Kind { return KindAllocateReq }

// MarshalTo implements Msg.
func (m *AllocateReq) MarshalTo(w *Writer) { w.Uint32(m.N); w.Uint32(m.Copies) }
func (m *AllocateReq) unmarshal(r *Reader) { m.N = r.Uint32(); m.Copies = r.Uint32() }

// AllocateResp lists the chosen provider addresses: one group of Copies
// addresses per page, flattened, so page i's replicas are
// Addrs[i*Copies:(i+1)*Copies].
type AllocateResp struct{ Addrs []string }

// Kind implements Msg.
func (*AllocateResp) Kind() Kind { return KindAllocateResp }

// MarshalTo implements Msg.
func (m *AllocateResp) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Addrs)))
	for _, a := range m.Addrs {
		w.String(a)
	}
}

func (m *AllocateResp) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Addrs = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m.Addrs = append(m.Addrs, r.String())
	}
}

// ListProvidersReq asks for a snapshot of all live providers.
type ListProvidersReq struct{}

// Kind implements Msg.
func (*ListProvidersReq) Kind() Kind { return KindListProvidersReq }

// MarshalTo implements Msg.
func (m *ListProvidersReq) MarshalTo(*Writer) {}
func (m *ListProvidersReq) unmarshal(*Reader) {}

// ProviderInfo summarizes one live data provider.
type ProviderInfo struct {
	Addr  string
	Pages uint64
	Bytes uint64
}

// ListProvidersResp carries a snapshot of all live providers.
type ListProvidersResp struct{ Providers []ProviderInfo }

// Kind implements Msg.
func (*ListProvidersResp) Kind() Kind { return KindListProvidersResp }

// MarshalTo implements Msg.
func (m *ListProvidersResp) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Providers)))
	for _, p := range m.Providers {
		w.String(p.Addr)
		w.Uint64(p.Pages)
		w.Uint64(p.Bytes)
	}
}

func (m *ListProvidersResp) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/16 {
		r.fail(ErrTooLarge)
		return
	}
	m.Providers = make([]ProviderInfo, 0, n)
	for i := 0; i < n; i++ {
		m.Providers = append(m.Providers, ProviderInfo{
			Addr:  r.String(),
			Pages: r.Uint64(),
			Bytes: r.Uint64(),
		})
	}
}

// ------------------------------------------------------------------ DHT

// DHTPutReq stores a key/value pair on a metadata provider.
type DHTPutReq struct {
	Key   []byte
	Value []byte
}

// Kind implements Msg.
func (*DHTPutReq) Kind() Kind { return KindDHTPutReq }

// MarshalTo implements Msg.
func (m *DHTPutReq) MarshalTo(w *Writer) {
	w.Bytes32(m.Key)
	w.Bytes32(m.Value)
}

func (m *DHTPutReq) unmarshal(r *Reader) {
	m.Key = r.Bytes32Copy()
	m.Value = r.Bytes32Copy()
}

// DHTPutResp acknowledges DHTPutReq.
type DHTPutResp struct{}

// Kind implements Msg.
func (*DHTPutResp) Kind() Kind { return KindDHTPutResp }

// MarshalTo implements Msg.
func (m *DHTPutResp) MarshalTo(*Writer) {}
func (m *DHTPutResp) unmarshal(*Reader) {}

// DHTGetReq fetches the value stored under Key.
type DHTGetReq struct{ Key []byte }

// Kind implements Msg.
func (*DHTGetReq) Kind() Kind { return KindDHTGetReq }

// MarshalTo implements Msg.
func (m *DHTGetReq) MarshalTo(w *Writer) { w.Bytes32(m.Key) }
func (m *DHTGetReq) unmarshal(r *Reader) { m.Key = r.Bytes32Copy() }

// DHTGetResp answers DHTGetReq.
type DHTGetResp struct {
	Found bool
	Value []byte
}

// Kind implements Msg.
func (*DHTGetResp) Kind() Kind { return KindDHTGetResp }

// MarshalTo implements Msg.
func (m *DHTGetResp) MarshalTo(w *Writer) {
	w.Bool(m.Found)
	w.Bytes32(m.Value)
}

func (m *DHTGetResp) unmarshal(r *Reader) {
	m.Found = r.Bool()
	m.Value = r.Bytes32Copy()
}

// DHTMultiPutReq stores several pairs in one round trip. Writers use it to
// store all tree nodes destined for the same metadata provider at once.
type DHTMultiPutReq struct {
	Keys   [][]byte
	Values [][]byte
}

// Kind implements Msg.
func (*DHTMultiPutReq) Kind() Kind { return KindDHTMultiPutReq }

// MarshalTo implements Msg.
func (m *DHTMultiPutReq) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Keys)))
	for i := range m.Keys {
		w.Bytes32(m.Keys[i])
		w.Bytes32(m.Values[i])
	}
}

func (m *DHTMultiPutReq) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Keys = make([][]byte, 0, n)
	m.Values = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Keys = append(m.Keys, r.Bytes32Copy())
		m.Values = append(m.Values, r.Bytes32Copy())
	}
}

// DHTMultiPutResp acknowledges DHTMultiPutReq.
type DHTMultiPutResp struct{}

// Kind implements Msg.
func (*DHTMultiPutResp) Kind() Kind { return KindDHTMultiPutResp }

// MarshalTo implements Msg.
func (m *DHTMultiPutResp) MarshalTo(*Writer) {}
func (m *DHTMultiPutResp) unmarshal(*Reader) {}

// DHTMultiGetReq fetches several keys in one round trip.
type DHTMultiGetReq struct{ Keys [][]byte }

// Kind implements Msg.
func (*DHTMultiGetReq) Kind() Kind { return KindDHTMultiGetReq }

// MarshalTo implements Msg.
func (m *DHTMultiGetReq) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Keys)))
	for _, k := range m.Keys {
		w.Bytes32(k)
	}
}

func (m *DHTMultiGetReq) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Keys = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Keys = append(m.Keys, r.Bytes32Copy())
	}
}

// DHTMultiGetResp answers DHTMultiGetReq; entries align with request keys.
type DHTMultiGetResp struct {
	Found  []bool
	Values [][]byte
}

// Kind implements Msg.
func (*DHTMultiGetResp) Kind() Kind { return KindDHTMultiGetResp }

// MarshalTo implements Msg.
func (m *DHTMultiGetResp) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Found)))
	for i := range m.Found {
		w.Bool(m.Found[i])
		w.Bytes32(m.Values[i])
	}
}

func (m *DHTMultiGetResp) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Found = make([]bool, 0, n)
	m.Values = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Found = append(m.Found, r.Bool())
		m.Values = append(m.Values, r.Bytes32Copy())
	}
}

// DHTStatsReq asks a metadata provider for storage statistics.
type DHTStatsReq struct{}

// Kind implements Msg.
func (*DHTStatsReq) Kind() Kind { return KindDHTStatsReq }

// MarshalTo implements Msg.
func (m *DHTStatsReq) MarshalTo(*Writer) {}
func (m *DHTStatsReq) unmarshal(*Reader) {}

// DHTStatsResp reports a metadata provider's storage statistics.
type DHTStatsResp struct {
	Keys  uint64
	Bytes uint64
}

// Kind implements Msg.
func (*DHTStatsResp) Kind() Kind { return KindDHTStatsResp }

// MarshalTo implements Msg.
func (m *DHTStatsResp) MarshalTo(w *Writer) {
	w.Uint64(m.Keys)
	w.Uint64(m.Bytes)
}

func (m *DHTStatsResp) unmarshal(r *Reader) {
	m.Keys = r.Uint64()
	m.Bytes = r.Uint64()
}

// -------------------------------------------------------- version manager

// CreateBlobReq creates a blob with the given page size (a power of two).
type CreateBlobReq struct{ PageSize uint32 }

// Kind implements Msg.
func (*CreateBlobReq) Kind() Kind { return KindCreateBlobReq }

// MarshalTo implements Msg.
func (m *CreateBlobReq) MarshalTo(w *Writer) { w.Uint32(m.PageSize) }
func (m *CreateBlobReq) unmarshal(r *Reader) { m.PageSize = r.Uint32() }

// CreateBlobResp returns the globally unique id of the new blob, which is
// born with the published empty snapshot 0.
type CreateBlobResp struct{ Blob BlobID }

// Kind implements Msg.
func (*CreateBlobResp) Kind() Kind { return KindCreateBlobResp }

// MarshalTo implements Msg.
func (m *CreateBlobResp) MarshalTo(w *Writer) { w.Uint64(uint64(m.Blob)) }
func (m *CreateBlobResp) unmarshal(r *Reader) { m.Blob = BlobID(r.Uint64()) }

// BlobInfoReq fetches a blob's immutable attributes.
type BlobInfoReq struct{ Blob BlobID }

// Kind implements Msg.
func (*BlobInfoReq) Kind() Kind { return KindBlobInfoReq }

// MarshalTo implements Msg.
func (m *BlobInfoReq) MarshalTo(w *Writer) { w.Uint64(uint64(m.Blob)) }
func (m *BlobInfoReq) unmarshal(r *Reader) { m.Blob = BlobID(r.Uint64()) }

// BlobInfoResp carries a blob's page size and lineage chain (youngest
// entry first; used to resolve which namespace owns each version's tree
// nodes across BRANCH boundaries).
type BlobInfoResp struct {
	PageSize uint32
	Lineage  Lineage
}

// Kind implements Msg.
func (*BlobInfoResp) Kind() Kind { return KindBlobInfoResp }

// MarshalTo implements Msg.
func (m *BlobInfoResp) MarshalTo(w *Writer) {
	w.Uint32(m.PageSize)
	w.Uint32(uint32(len(m.Lineage)))
	for _, e := range m.Lineage {
		e.encode(w)
	}
}

func (m *BlobInfoResp) unmarshal(r *Reader) {
	m.PageSize = r.Uint32()
	n := int(r.Uint32())
	if n > MaxSliceLen/16 {
		r.fail(ErrTooLarge)
		return
	}
	m.Lineage = make(Lineage, 0, n)
	for i := 0; i < n; i++ {
		m.Lineage = append(m.Lineage, decodeLineageEntry(r))
	}
}

// AssignReq registers an update and requests a snapshot version. For a
// WRITE, Offset/Size describe the target range. For an APPEND, Append is
// true, Offset is ignored, and the version manager assigns the offset
// (the size of the previous snapshot, §3.3).
type AssignReq struct {
	Blob   BlobID
	Offset uint64
	Size   uint64
	Append bool
}

// Kind implements Msg.
func (*AssignReq) Kind() Kind { return KindAssignReq }

// MarshalTo implements Msg.
func (m *AssignReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Offset)
	w.Uint64(m.Size)
	w.Bool(m.Append)
}

func (m *AssignReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Offset = r.Uint64()
	m.Size = r.Uint64()
	m.Append = r.Bool()
}

// AssignResp returns the assigned snapshot version together with
// everything the writer needs to weave metadata without further
// synchronization: the assigned offset (== requested for WRITE, == size of
// the previous snapshot for APPEND), the most recently published version
// and its size, and the descriptors of in-flight lower-versioned updates
// (the paper's partial border set, §4.2).
type AssignResp struct {
	Version       Version
	Offset        uint64
	NewSize       uint64
	PrevSize      uint64 // size of snapshot Version-1 (pending updates included)
	Published     Version
	PublishedSize uint64
	InFlight      []UpdateDesc
}

// Kind implements Msg.
func (*AssignResp) Kind() Kind { return KindAssignResp }

// MarshalTo implements Msg.
func (m *AssignResp) MarshalTo(w *Writer) {
	w.Uint64(m.Version)
	w.Uint64(m.Offset)
	w.Uint64(m.NewSize)
	w.Uint64(m.PrevSize)
	w.Uint64(m.Published)
	w.Uint64(m.PublishedSize)
	w.Uint32(uint32(len(m.InFlight)))
	for _, u := range m.InFlight {
		u.encode(w)
	}
}

func (m *AssignResp) unmarshal(r *Reader) {
	m.Version = r.Uint64()
	m.Offset = r.Uint64()
	m.NewSize = r.Uint64()
	m.PrevSize = r.Uint64()
	m.Published = r.Uint64()
	m.PublishedSize = r.Uint64()
	n := int(r.Uint32())
	if n > MaxSliceLen/24 {
		r.fail(ErrTooLarge)
		return
	}
	m.InFlight = make([]UpdateDesc, 0, n)
	for i := 0; i < n; i++ {
		m.InFlight = append(m.InFlight, decodeUpdateDesc(r))
	}
}

// CompleteReq notifies the version manager that the writer finished
// storing pages and metadata for Version; the manager will publish it once
// all earlier versions are published (total ordering, §2).
type CompleteReq struct {
	Blob    BlobID
	Version Version
}

// Kind implements Msg.
func (*CompleteReq) Kind() Kind { return KindCompleteReq }

// MarshalTo implements Msg.
func (m *CompleteReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Version)
}

func (m *CompleteReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Version = r.Uint64()
}

// CompleteResp acknowledges CompleteReq.
type CompleteResp struct{}

// Kind implements Msg.
func (*CompleteResp) Kind() Kind { return KindCompleteResp }

// MarshalTo implements Msg.
func (m *CompleteResp) MarshalTo(*Writer) {}
func (m *CompleteResp) unmarshal(*Reader) {}

// AbortReq withdraws an assigned but unpublished update so later versions
// are not blocked behind a writer that failed.
type AbortReq struct {
	Blob    BlobID
	Version Version
}

// Kind implements Msg.
func (*AbortReq) Kind() Kind { return KindAbortReq }

// MarshalTo implements Msg.
func (m *AbortReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Version)
}

func (m *AbortReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Version = r.Uint64()
}

// AbortResp acknowledges AbortReq.
type AbortResp struct{}

// Kind implements Msg.
func (*AbortResp) Kind() Kind { return KindAbortResp }

// MarshalTo implements Msg.
func (m *AbortResp) MarshalTo(*Writer) {}
func (m *AbortResp) unmarshal(*Reader) {}

// RecentReq implements GET_RECENT: a recently published version of a blob.
type RecentReq struct{ Blob BlobID }

// Kind implements Msg.
func (*RecentReq) Kind() Kind { return KindRecentReq }

// MarshalTo implements Msg.
func (m *RecentReq) MarshalTo(w *Writer) { w.Uint64(uint64(m.Blob)) }
func (m *RecentReq) unmarshal(r *Reader) { m.Blob = BlobID(r.Uint64()) }

// RecentResp returns the latest published version and its size. The
// guarantee is Version >= every version published before the call (§2.1).
type RecentResp struct {
	Version Version
	Size    uint64
}

// Kind implements Msg.
func (*RecentResp) Kind() Kind { return KindRecentResp }

// MarshalTo implements Msg.
func (m *RecentResp) MarshalTo(w *Writer) {
	w.Uint64(m.Version)
	w.Uint64(m.Size)
}

func (m *RecentResp) unmarshal(r *Reader) {
	m.Version = r.Uint64()
	m.Size = r.Uint64()
}

// SizeReq implements GET_SIZE for a published snapshot version.
type SizeReq struct {
	Blob    BlobID
	Version Version
}

// Kind implements Msg.
func (*SizeReq) Kind() Kind { return KindSizeReq }

// MarshalTo implements Msg.
func (m *SizeReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Version)
}

func (m *SizeReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Version = r.Uint64()
}

// SizeResp returns the snapshot's size in bytes.
type SizeResp struct{ Size uint64 }

// Kind implements Msg.
func (*SizeResp) Kind() Kind { return KindSizeResp }

// MarshalTo implements Msg.
func (m *SizeResp) MarshalTo(w *Writer) { w.Uint64(m.Size) }
func (m *SizeResp) unmarshal(r *Reader) { m.Size = r.Uint64() }

// SyncReq implements SYNC: the response is withheld until Version of Blob
// is published.
type SyncReq struct {
	Blob    BlobID
	Version Version
}

// Kind implements Msg.
func (*SyncReq) Kind() Kind { return KindSyncReq }

// MarshalTo implements Msg.
func (m *SyncReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Version)
}

func (m *SyncReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Version = r.Uint64()
}

// SyncResp is sent once the awaited version is published.
type SyncResp struct{}

// Kind implements Msg.
func (*SyncResp) Kind() Kind { return KindSyncResp }

// MarshalTo implements Msg.
func (m *SyncResp) MarshalTo(*Writer) {}
func (m *SyncResp) unmarshal(*Reader) {}

// BranchReq implements BRANCH: virtually duplicate Blob at published
// Version into a new blob.
type BranchReq struct {
	Blob    BlobID
	Version Version
}

// Kind implements Msg.
func (*BranchReq) Kind() Kind { return KindBranchReq }

// MarshalTo implements Msg.
func (m *BranchReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.Version)
}

func (m *BranchReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.Version = r.Uint64()
}

// BranchResp returns the id of the new branched blob.
type BranchResp struct{ NewBlob BlobID }

// Kind implements Msg.
func (*BranchResp) Kind() Kind { return KindBranchResp }

// MarshalTo implements Msg.
func (m *BranchResp) MarshalTo(w *Writer) { w.Uint64(uint64(m.NewBlob)) }
func (m *BranchResp) unmarshal(r *Reader) { m.NewBlob = BlobID(r.Uint64()) }

// ErrorResp may answer any request; it carries a stable error code and a
// human-readable message.
type ErrorResp struct {
	Code ErrCode
	Msg  string
}

// Kind implements Msg.
func (*ErrorResp) Kind() Kind { return KindErrorResp }

// MarshalTo implements Msg.
func (m *ErrorResp) MarshalTo(w *Writer) {
	w.Uint16(uint16(m.Code))
	w.String(m.Msg)
}

func (m *ErrorResp) unmarshal(r *Reader) {
	m.Code = ErrCode(r.Uint16())
	m.Msg = r.String()
}

// --------------------------------------------------------- retention / GC

// DeletePagesReq asks a data provider to drop a batch of pages. The
// caller — the garbage collector walking version metadata, or a writer
// reclaiming pages it abandoned before they were ever referenced — must
// have proven every page unreachable from all retained snapshot versions.
// Deleting an unknown page is a no-op, so retries and concurrent
// collectors are harmless.
type DeletePagesReq struct{ Pages []PageID }

// Kind implements Msg.
func (*DeletePagesReq) Kind() Kind { return KindDeletePagesReq }

// MarshalTo implements Msg.
func (m *DeletePagesReq) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Pages)))
	for i := range m.Pages {
		w.Raw(m.Pages[i][:])
	}
}

func (m *DeletePagesReq) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/16 {
		r.fail(ErrTooLarge)
		return
	}
	m.Pages = make([]PageID, n)
	for i := 0; i < n; i++ {
		copy(m.Pages[i][:], r.Raw(16))
	}
}

// DeletePagesResp acknowledges DeletePagesReq: every requested page is
// now absent (deleted, or never stored here).
type DeletePagesResp struct{}

// Kind implements Msg.
func (*DeletePagesResp) Kind() Kind { return KindDeletePagesResp }

// MarshalTo implements Msg.
func (m *DeletePagesResp) MarshalTo(*Writer) {}
func (m *DeletePagesResp) unmarshal(*Reader) {}

// ExpireReq implements EXPIRE: it asks the version manager to mark every
// snapshot of Blob's own namespace with version <= UpTo as expired
// (permanently unreadable), making their exclusively owned pages
// reclaimable by GC. The manager refuses if UpTo reaches the newest
// readable version, a version pinned as a branch point by a live child
// blob, or the published base an in-flight update is weaving against; it
// silently clamps to the configured keep-last-N retention policy.
type ExpireReq struct {
	Blob BlobID
	UpTo Version
}

// Kind implements Msg.
func (*ExpireReq) Kind() Kind { return KindExpireReq }

// MarshalTo implements Msg.
func (m *ExpireReq) MarshalTo(w *Writer) {
	w.Uint64(uint64(m.Blob))
	w.Uint64(m.UpTo)
}

func (m *ExpireReq) unmarshal(r *Reader) {
	m.Blob = BlobID(r.Uint64())
	m.UpTo = r.Uint64()
}

// ExpireResp reports the blob's expiry floor after the request: every
// owned version below Floor is expired. Expired lists the published
// versions this call newly expired (empty for an idempotent repeat or a
// fully clamped request).
type ExpireResp struct {
	Floor   Version
	Expired []Version
}

// Kind implements Msg.
func (*ExpireResp) Kind() Kind { return KindExpireResp }

// MarshalTo implements Msg.
func (m *ExpireResp) MarshalTo(w *Writer) {
	w.Uint64(m.Floor)
	w.Uint32(uint32(len(m.Expired)))
	for _, v := range m.Expired {
		w.Uint64(v)
	}
}

func (m *ExpireResp) unmarshal(r *Reader) {
	m.Floor = r.Uint64()
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Expired = make([]Version, 0, n)
	for i := 0; i < n; i++ {
		m.Expired = append(m.Expired, r.Uint64())
	}
}

// VersionInfo pairs a snapshot version with its byte size, enough for a
// GC walker to construct the snapshot's tree root.
type VersionInfo struct {
	Version Version
	Size    uint64
}

func (v VersionInfo) encode(w *Writer) {
	w.Uint64(v.Version)
	w.Uint64(v.Size)
}

func decodeVersionInfo(r *Reader) VersionInfo {
	return VersionInfo{Version: r.Uint64(), Size: r.Uint64()}
}

// GCInfoReq asks the version manager what a garbage collection of Blob
// should walk. It is read-only and idempotent, so a collector that
// crashed mid-sweep can re-fetch the same plan and resume.
type GCInfoReq struct{ Blob BlobID }

// Kind implements Msg.
func (*GCInfoReq) Kind() Kind { return KindGCInfoReq }

// MarshalTo implements Msg.
func (m *GCInfoReq) MarshalTo(w *Writer) { w.Uint64(uint64(m.Blob)) }
func (m *GCInfoReq) unmarshal(r *Reader) { m.Blob = BlobID(r.Uint64()) }

// GCInfoResp is the GC plan for one blob namespace: the expired published
// versions whose trees the collector walks for deletion candidates, and
// the oldest retained version whose tree it diffs against (any page a
// retained snapshot can still reach is reachable from the oldest one —
// trees share monotonically). OwnMin is the blob's own namespace floor
// from its lineage: nodes referenced below it belong to an ancestor blob
// and are that ancestor's GC's business.
type GCInfoResp struct {
	OwnMin   Version
	Floor    Version
	Retained VersionInfo
	Expired  []VersionInfo
}

// Kind implements Msg.
func (*GCInfoResp) Kind() Kind { return KindGCInfoResp }

// MarshalTo implements Msg.
func (m *GCInfoResp) MarshalTo(w *Writer) {
	w.Uint64(m.OwnMin)
	w.Uint64(m.Floor)
	m.Retained.encode(w)
	w.Uint32(uint32(len(m.Expired)))
	for _, v := range m.Expired {
		v.encode(w)
	}
}

func (m *GCInfoResp) unmarshal(r *Reader) {
	m.OwnMin = r.Uint64()
	m.Floor = r.Uint64()
	m.Retained = decodeVersionInfo(r)
	n := int(r.Uint32())
	if n > MaxSliceLen/16 {
		r.fail(ErrTooLarge)
		return
	}
	m.Expired = make([]VersionInfo, 0, n)
	for i := 0; i < n; i++ {
		m.Expired = append(m.Expired, decodeVersionInfo(r))
	}
}

// DHTDeleteReq asks a metadata provider to drop a batch of key/value
// pairs — the metadata twin of DeletePagesReq. The caller (the garbage
// collector diffing expired snapshot trees against the oldest retained
// one) must have proven every key unreachable from all retained
// versions and branches. Deleting an unknown key is a no-op, so retries
// and concurrent collectors are harmless.
type DHTDeleteReq struct{ Keys [][]byte }

// Kind implements Msg.
func (*DHTDeleteReq) Kind() Kind { return KindDHTDeleteReq }

// MarshalTo implements Msg.
func (m *DHTDeleteReq) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Keys)))
	for _, k := range m.Keys {
		w.Bytes32(k)
	}
}

func (m *DHTDeleteReq) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Keys = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Keys = append(m.Keys, r.Bytes32Copy())
	}
}

// DHTDeleteResp acknowledges DHTDeleteReq: every requested key is now
// absent on this node. Deleted counts the keys that actually existed
// here, so collectors can report how much metadata one sweep removed.
type DHTDeleteResp struct{ Deleted uint64 }

// Kind implements Msg.
func (*DHTDeleteResp) Kind() Kind { return KindDHTDeleteResp }

// MarshalTo implements Msg.
func (m *DHTDeleteResp) MarshalTo(w *Writer) { w.Uint64(m.Deleted) }
func (m *DHTDeleteResp) unmarshal(r *Reader) { m.Deleted = r.Uint64() }

// PageRange addresses Length bytes starting at Offset within one page;
// Length == WholePage requests the full page contents, like GetPageReq.
type PageRange struct {
	Page   PageID
	Offset uint32
	Length uint32
}

// MaxGetPagesRanges and MaxGetPagesBytes bound one GetPagesReq: at most
// MaxGetPagesRanges entries per request, and at most MaxGetPagesBytes of
// cumulative page payload in the response. A provider builds the whole
// batch answer in memory before replying, so without the caps one
// request could pin an unbounded buffer server-side. Providers reject
// requests beyond either cap; clients split larger scans into multiple
// batches. A single range may still exceed the byte cap — one whole
// page is always fetchable, exactly as with GetPageReq.
const (
	MaxGetPagesRanges = 4096
	MaxGetPagesBytes  = 64 << 20
)

// GetPagesReq reads many page ranges from one provider in a single round
// trip — the coalesced form of GetPageReq that sequential scans use so a
// contiguous read costs few large requests instead of one RPC per page.
// Requests must respect MaxGetPagesRanges and MaxGetPagesBytes.
type GetPagesReq struct{ Ranges []PageRange }

// Kind implements Msg.
func (*GetPagesReq) Kind() Kind { return KindGetPagesReq }

// MarshalTo implements Msg.
func (m *GetPagesReq) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Ranges)))
	for _, pr := range m.Ranges {
		w.Raw(pr.Page[:])
		w.Uint32(pr.Offset)
		w.Uint32(pr.Length)
	}
}

func (m *GetPagesReq) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/24 {
		r.fail(ErrTooLarge)
		return
	}
	m.Ranges = make([]PageRange, 0, n)
	for i := 0; i < n; i++ {
		var pr PageRange
		copy(pr.Page[:], r.Raw(16))
		pr.Offset = r.Uint32()
		pr.Length = r.Uint32()
		m.Ranges = append(m.Ranges, pr)
	}
}

// GetPagesResp answers GetPagesReq entry-for-entry: Found[i] says
// whether the provider holds Ranges[i].Page, and Data[i] carries its
// bytes (empty when absent). A missing page is per-entry data, not an
// error, so one cold replica cannot fail a whole batch.
type GetPagesResp struct {
	Found []bool
	Data  [][]byte
}

// Kind implements Msg.
func (*GetPagesResp) Kind() Kind { return KindGetPagesResp }

// MarshalTo implements Msg.
func (m *GetPagesResp) MarshalTo(w *Writer) {
	w.Uint32(uint32(len(m.Found)))
	for i, f := range m.Found {
		w.Bool(f)
		w.Bytes32(m.Data[i])
	}
}

func (m *GetPagesResp) unmarshal(r *Reader) {
	n := int(r.Uint32())
	if n > MaxSliceLen/8 {
		r.fail(ErrTooLarge)
		return
	}
	m.Found = make([]bool, 0, n)
	m.Data = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		m.Found = append(m.Found, r.Bool())
		m.Data = append(m.Data, r.Bytes32Copy())
	}
}
