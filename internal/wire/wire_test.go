package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	w := NewWriter(64)
	m.MarshalTo(w)
	out, err := Decode(m.Kind(), w.Bytes())
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Kind(), err)
	}
	return out
}

func TestRoundTripAllMessages(t *testing.T) {
	pid := PageID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	msgs := []Msg{
		&PingReq{Nonce: 42},
		&PingResp{Nonce: 42},
		&PutPageReq{Page: pid, Data: []byte("hello")},
		&PutPageResp{},
		&GetPageReq{Page: pid, Offset: 7, Length: WholePage},
		&GetPageResp{Data: []byte{0, 1, 2}},
		&HasPageReq{Page: pid},
		&HasPageResp{Found: true},
		&ProviderStatsReq{},
		&ProviderStatsResp{Pages: 9, Bytes: 1 << 40},
		&RegisterReq{Addr: "node-7:4400", Weight: 3},
		&RegisterResp{ID: 11},
		&HeartbeatReq{ID: 11, Pages: 5, Bytes: 500},
		&HeartbeatResp{Known: true},
		&AllocateReq{N: 4},
		&AllocateResp{Addrs: []string{"a:1", "b:2", "c:3"}},
		&ListProvidersReq{},
		&ListProvidersResp{Providers: []ProviderInfo{{Addr: "a:1", Pages: 1, Bytes: 2}}},
		&DHTPutReq{Key: []byte("k"), Value: []byte("v")},
		&DHTPutResp{},
		&DHTGetReq{Key: []byte("k")},
		&DHTGetResp{Found: true, Value: []byte("v")},
		&DHTMultiPutReq{Keys: [][]byte{[]byte("k1"), []byte("k2")}, Values: [][]byte{[]byte("v1"), []byte("v2")}},
		&DHTMultiPutResp{},
		&DHTMultiGetReq{Keys: [][]byte{[]byte("k1")}},
		&DHTMultiGetResp{Found: []bool{true, false}, Values: [][]byte{[]byte("v1"), nil}},
		&DHTStatsReq{},
		&DHTStatsResp{Keys: 3, Bytes: 99},
		&CreateBlobReq{PageSize: 65536},
		&CreateBlobResp{Blob: 12},
		&BlobInfoReq{Blob: 12},
		&BlobInfoResp{PageSize: 4096, Lineage: Lineage{{Blob: 12, MinVersion: 6}, {Blob: 3, MinVersion: 0}}},
		&AssignReq{Blob: 12, Offset: 100, Size: 200, Append: true},
		&AssignResp{Version: 9, Offset: 64, NewSize: 1024, Published: 8, PublishedSize: 960,
			InFlight: []UpdateDesc{{Version: 7, Offset: 0, Size: 64}}},
		&CompleteReq{Blob: 12, Version: 9},
		&CompleteResp{},
		&AbortReq{Blob: 12, Version: 9},
		&AbortResp{},
		&RecentReq{Blob: 12},
		&RecentResp{Version: 8, Size: 960},
		&SizeReq{Blob: 12, Version: 8},
		&SizeResp{Size: 960},
		&SyncReq{Blob: 12, Version: 9},
		&SyncResp{},
		&BranchReq{Blob: 12, Version: 8},
		&BranchResp{NewBlob: 13},
		&ErrorResp{Code: CodeNotPublished, Msg: "v9 pending"},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%v: round trip mismatch:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

// normalize maps nil and empty byte slices to a canonical form so that
// DeepEqual treats a decoded empty slice as equal to an encoded nil.
func normalize(m Msg) Msg {
	switch v := m.(type) {
	case *DHTMultiGetResp:
		for i := range v.Values {
			if len(v.Values[i]) == 0 {
				v.Values[i] = nil
			}
		}
	case *GetPageResp:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	case *DHTGetResp:
		if len(v.Value) == 0 {
			v.Value = nil
		}
	}
	return m
}

func TestEveryKindConstructible(t *testing.T) {
	for k := KindPingReq; k < kindMax; k++ {
		m := New(k)
		if m == nil {
			t.Fatalf("New(%v) returned nil", k)
		}
		if m.Kind() != k {
			t.Fatalf("New(%v).Kind() = %v", k, m.Kind())
		}
		if k.String() == "" || k.String()[0] == 'K' && k.String()[1] == 'i' && k != KindInvalid {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if New(kindMax) != nil {
		t.Fatal("New(kindMax) should be nil")
	}
	if New(KindInvalid) != nil {
		t.Fatal("New(KindInvalid) should be nil")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	w := NewWriter(16)
	(&PingReq{Nonce: 1}).MarshalTo(w)
	w.Uint8(0xFF) // junk
	if _, err := Decode(KindPingReq, w.Bytes()); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	w := NewWriter(64)
	(&PutPageReq{Page: PageID{1}, Data: []byte("abcdef")}).MarshalTo(w)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(KindPutPageReq, full[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestDecodeRejectsHugeLengthPrefix(t *testing.T) {
	w := NewWriter(8)
	w.Uint32(math.MaxUint32) // claimed huge key
	if _, err := Decode(KindDHTGetReq, w.Bytes()); err == nil {
		t.Fatal("expected too-large error")
	}
}

func TestReaderPrimitives(t *testing.T) {
	w := NewWriter(64)
	w.Uint8(7)
	w.Bool(true)
	w.Bool(false)
	w.Uint16(0xBEEF)
	w.Uint32(0xDEADBEEF)
	w.Uint64(0x0102030405060708)
	w.Bytes32([]byte("xy"))
	w.String("hello")
	w.Raw([]byte{9, 9})

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 7 {
		t.Errorf("Uint8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool mismatch")
	}
	if got := r.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 0x0102030405060708 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("xy")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestReaderErrorSticky(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads return zero values, not panic.
	if r.Uint32() != 0 || r.String() != "" || r.Bytes32() != nil {
		t.Fatal("reads after error should return zero values")
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(1)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d", w.Len())
	}
	w.Uint8(5)
	if !bytes.Equal(w.Bytes(), []byte{5}) {
		t.Fatalf("Bytes after Reset = %v", w.Bytes())
	}
}

func TestPageIDGenUnique(t *testing.T) {
	g := NewPageIDGen()
	seen := make(map[PageID]bool)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if id.IsZero() {
			t.Fatal("generated zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
	g2 := NewPageIDGen()
	if g2.Next() == g.Next() {
		t.Fatal("two generators collided immediately")
	}
}

func TestLineageOwner(t *testing.T) {
	// Blob 5 branched from 3 at version 7 (so 5 owns versions >= 8);
	// blob 3 branched from 1 at version 2 (3 owns versions >= 3).
	l := Lineage{{Blob: 5, MinVersion: 8}, {Blob: 3, MinVersion: 3}, {Blob: 1, MinVersion: 0}}
	cases := []struct {
		v    Version
		want BlobID
	}{
		{0, 1}, {2, 1}, {3, 3}, {7, 3}, {8, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := l.Owner(c.v); got != c.want {
			t.Errorf("Owner(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	if (Lineage{}).Owner(3) != 0 {
		t.Error("empty lineage should resolve to 0")
	}
}

func TestQuickAssignRespRoundTrip(t *testing.T) {
	f := func(ver, off, sz, pub, psz uint64, inflight []UpdateDesc) bool {
		in := &AssignResp{Version: ver, Offset: off, NewSize: sz, Published: pub,
			PublishedSize: psz, InFlight: inflight}
		w := NewWriter(64)
		in.MarshalTo(w)
		out, err := Decode(KindAssignReq+1, w.Bytes())
		if err != nil {
			return false
		}
		got := out.(*AssignResp)
		if len(got.InFlight) == 0 {
			got.InFlight = nil
		}
		if len(in.InFlight) == 0 {
			in.InFlight = nil
		}
		return reflect.DeepEqual(got, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDHTPairsRoundTrip(t *testing.T) {
	f := func(keys [][]byte) bool {
		vals := make([][]byte, len(keys))
		for i := range keys {
			vals[i] = append([]byte("v-"), keys[i]...)
		}
		in := &DHTMultiPutReq{Keys: keys, Values: vals}
		w := NewWriter(64)
		in.MarshalTo(w)
		out, err := Decode(KindDHTMultiPutReq, w.Bytes())
		if err != nil {
			return false
		}
		got := out.(*DHTMultiPutReq)
		if len(got.Keys) != len(keys) {
			return false
		}
		for i := range keys {
			if !bytes.Equal(got.Keys[i], keys[i]) || !bytes.Equal(got.Values[i], vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorHelpers(t *testing.T) {
	err := NewError(CodeNotFound, "blob %d", 7)
	if !IsNotFound(err) {
		t.Error("IsNotFound failed")
	}
	if IsNotPublished(err) || IsOutOfBounds(err) {
		t.Error("wrong classification")
	}
	if CodeOf(err) != CodeNotFound {
		t.Error("CodeOf failed")
	}
	if CodeOf(bytes.ErrTooLarge) != CodeUnknown {
		t.Error("foreign errors should map to CodeUnknown")
	}
	if err.Error() == "" || (&Error{Code: CodeAborted}).Error() == "" {
		t.Error("empty error strings")
	}
}
