package wire

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// BlobID identifies a blob. IDs are assigned sequentially by the version
// manager and are unique within a cluster.
type BlobID uint64

// String renders the id in the form used by the CLI tools.
func (b BlobID) String() string { return fmt.Sprintf("blob-%d", uint64(b)) }

// Version numbers snapshots of a blob. Version 0 is the empty snapshot
// that exists from CREATE; the first update produces version 1.
type Version = uint64

// NoVersion is the sentinel stored in an inner tree node for a child range
// that has never been written (a hole in an incomplete tree). Readers never
// descend into such children because reads are bounded by the snapshot
// size.
const NoVersion Version = ^uint64(0)

// PageID globally and uniquely identifies one stored page. Clients draw
// ids from a local generator seeded with cryptographically random bytes,
// so ids never collide across concurrent clients — this is what lets
// writers store pages with no coordination (§3.3 of the paper).
type PageID [16]byte

// String renders the id as hex, for logs and debugging.
func (p PageID) String() string { return hex.EncodeToString(p[:]) }

// IsZero reports whether p is the all-zero (invalid) id.
func (p PageID) IsZero() bool { return p == PageID{} }

// PageIDGen hands out unique PageIDs. The high 8 bytes are a random
// generator instance id; the low 8 bytes are a local counter. A zero
// PageIDGen is not usable; construct with NewPageIDGen.
type PageIDGen struct {
	prefix [8]byte
	ctr    atomic.Uint64
}

// NewPageIDGen creates a generator with a cryptographically random prefix.
func NewPageIDGen() *PageIDGen {
	g := &PageIDGen{}
	if _, err := rand.Read(g.prefix[:]); err != nil {
		panic("wire: cannot seed page id generator: " + err.Error())
	}
	return g
}

// Next returns a fresh unique PageID.
func (g *PageIDGen) Next() PageID {
	var id PageID
	copy(id[:8], g.prefix[:])
	binary.LittleEndian.PutUint64(id[8:], g.ctr.Add(1))
	return id
}

// UpdateDesc describes an update (WRITE or APPEND) that has been assigned a
// snapshot version: the version and the byte range it rewrites. The version
// manager returns the descriptors of all in-flight lower-versioned updates
// to a newly assigned writer so it can compute border-node versions without
// waiting for those updates to publish (§4.2, "Why WRITEs and APPENDs may
// proceed in parallel").
type UpdateDesc struct {
	Version Version
	Offset  uint64
	Size    uint64
}

func (u UpdateDesc) encode(w *Writer) {
	w.Uint64(u.Version)
	w.Uint64(u.Offset)
	w.Uint64(u.Size)
}

func decodeUpdateDesc(r *Reader) UpdateDesc {
	return UpdateDesc{Version: r.Uint64(), Offset: r.Uint64(), Size: r.Uint64()}
}

// LineageEntry says that versions >= MinVersion of some blob were written
// under blob Blob's namespace. A blob's lineage is the chain produced by
// BRANCH: the youngest entry is the blob itself, the oldest is the root
// ancestor with MinVersion 0.
type LineageEntry struct {
	Blob       BlobID
	MinVersion Version
}

func (e LineageEntry) encode(w *Writer) {
	w.Uint64(uint64(e.Blob))
	w.Uint64(e.MinVersion)
}

func decodeLineageEntry(r *Reader) LineageEntry {
	return LineageEntry{Blob: BlobID(r.Uint64()), MinVersion: r.Uint64()}
}

// Lineage is an owner-resolution chain, youngest entry first.
type Lineage []LineageEntry

// Owner returns the blob under whose namespace version v was written.
// The lineage must be well formed (youngest first, last entry MinVersion 0).
func (l Lineage) Owner(v Version) BlobID {
	for _, e := range l {
		if v >= e.MinVersion {
			return e.Blob
		}
	}
	if len(l) == 0 {
		return 0
	}
	return l[len(l)-1].Blob
}
