// Package wire defines the binary protocol spoken between BlobSeer
// processes: clients, data providers, the provider manager, metadata (DHT)
// providers and the version manager.
//
// Every message is a fixed-layout binary structure encoded with the helpers
// in this file. Integers are little-endian and fixed width; byte slices and
// strings are length-prefixed with a uint32. The framing layer (package rpc)
// prepends a frame header; this package is only concerned with message
// bodies and their type codes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is returned when a message body ends before all declared
// fields could be decoded.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge is returned when a length prefix exceeds the remaining input
// or the configured maximum, which indicates a corrupt or hostile frame.
var ErrTooLarge = errors.New("wire: declared length too large")

// MaxSliceLen caps individual length-prefixed fields. It exists to bound
// allocations driven by untrusted length prefixes.
const MaxSliceLen = 1 << 30

// Writer accumulates an encoded message body. The zero value is ready to
// use; Bytes returns the accumulated encoding.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Reset discards the accumulated encoding but keeps the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated encoding. The slice aliases the Writer's
// internal buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends a single byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean encoded as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

// Uint16 appends a little-endian uint16.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a little-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Bytes32 appends a uint32 length prefix followed by the raw bytes.
func (w *Writer) Bytes32(p []byte) {
	if len(p) > math.MaxUint32 {
		panic("wire: slice too large to encode")
	}
	w.Uint32(uint32(len(p)))
	w.buf = append(w.buf, p...)
}

// String appends a uint32 length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	if len(s) > math.MaxUint32 {
		panic("wire: string too large to encode")
	}
	w.Uint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends p verbatim, with no length prefix.
func (w *Writer) Raw(p []byte) { w.buf = append(w.buf, p...) }

// Reader decodes a message body produced by Writer. Decoding methods
// record the first error encountered; callers may batch a sequence of
// reads and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// Uint8 decodes a single byte.
func (r *Reader) Uint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// Bool decodes a one-byte boolean.
func (r *Reader) Bool() bool { return r.Uint8() != 0 }

// Uint16 decodes a little-endian uint16.
func (r *Reader) Uint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// Uint32 decodes a little-endian uint32.
func (r *Reader) Uint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// Uint64 decodes a little-endian uint64.
func (r *Reader) Uint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Bytes32 decodes a uint32-length-prefixed byte slice. The returned slice
// aliases the Reader's input; callers that retain it across frame reuse
// must copy.
func (r *Reader) Bytes32() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > MaxSliceLen || int(n) > r.Remaining() {
		r.fail(ErrTooLarge)
		return nil
	}
	return r.take(int(n))
}

// Bytes32Copy decodes a length-prefixed byte slice into fresh storage.
func (r *Reader) Bytes32Copy() []byte {
	p := r.Bytes32()
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// String decodes a uint32-length-prefixed string.
func (r *Reader) String() string {
	p := r.Bytes32()
	if p == nil {
		return ""
	}
	return string(p)
}

// Raw decodes n raw bytes with no length prefix.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Finish reports an error if decoding failed or if undecoded bytes remain,
// which would indicate a protocol version mismatch.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(r.buf)-r.off)
	}
	return nil
}
