package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"blobseer/internal/wire"
)

// Disk is a durable Store: a single append-only log file plus an
// in-memory index rebuilt on open. Records are CRC-checked; a torn tail
// (crash mid-append) is detected and truncated on recovery, while
// corruption in the middle of the log is reported as an error.
//
// Log record layout (little-endian):
//
//	uint32 magic | uint32 dataLen | 16-byte PageID | uint32 crc32(data) | data
type Disk struct {
	mu    sync.RWMutex
	f     *os.File
	index map[wire.PageID]recordPos
	size  int64 // current log length
	bytes uint64
	sync  bool // fsync after every put
}

type recordPos struct {
	off    int64 // file offset of the data payload
	length uint32
}

const (
	diskMagic     = 0xB10B5EE5
	recHeaderSize = 4 + 4 + 16 + 4
)

// DiskOptions tunes a Disk store.
type DiskOptions struct {
	// Sync forces an fsync after every Put. Slower, but a crash loses at
	// most the in-flight page instead of the OS write-back window.
	Sync bool
}

// OpenDisk opens (creating if needed) the log at path and rebuilds the
// index by scanning it. A torn final record is truncated away.
func OpenDisk(path string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: create dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open log: %w", err)
	}
	d := &Disk{f: f, index: make(map[wire.PageID]recordPos), sync: opts.Sync}
	if err := d.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// recover scans the log, rebuilding the index. It stops cleanly at a torn
// tail and truncates it; a bad record with valid records after it is
// corruption and fails the open.
func (d *Disk) recover() error {
	info, err := d.f.Stat()
	if err != nil {
		return fmt.Errorf("pagestore: stat log: %w", err)
	}
	logLen := info.Size()
	var off int64
	var hdr [recHeaderSize]byte
	for off < logLen {
		if logLen-off < recHeaderSize {
			break // torn header
		}
		if _, err := d.f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("pagestore: read header at %d: %w", off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != diskMagic {
			return fmt.Errorf("pagestore: bad magic at offset %d: log corrupted", off)
		}
		dataLen := binary.LittleEndian.Uint32(hdr[4:8])
		var id wire.PageID
		copy(id[:], hdr[8:24])
		wantCRC := binary.LittleEndian.Uint32(hdr[24:28])
		dataOff := off + recHeaderSize
		if dataOff+int64(dataLen) > logLen {
			break // torn payload
		}
		data := make([]byte, dataLen)
		if _, err := d.f.ReadAt(data, dataOff); err != nil {
			return fmt.Errorf("pagestore: read payload at %d: %w", dataOff, err)
		}
		if crc32.ChecksumIEEE(data) != wantCRC {
			return fmt.Errorf("pagestore: crc mismatch for page %v at offset %d: log corrupted", id, off)
		}
		if _, dup := d.index[id]; !dup {
			d.index[id] = recordPos{off: dataOff, length: dataLen}
			d.bytes += uint64(dataLen)
		}
		off = dataOff + int64(dataLen)
	}
	if off < logLen {
		// Torn tail from a crash mid-append: discard it.
		if err := d.f.Truncate(off); err != nil {
			return fmt.Errorf("pagestore: truncate torn tail: %w", err)
		}
	}
	d.size = off
	return nil
}

// Put implements Store.
func (d *Disk) Put(id wire.PageID, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return errors.New("pagestore: store closed")
	}
	if _, dup := d.index[id]; dup {
		return nil
	}
	rec := make([]byte, recHeaderSize+len(data))
	binary.LittleEndian.PutUint32(rec[0:4], diskMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(data)))
	copy(rec[8:24], id[:])
	binary.LittleEndian.PutUint32(rec[24:28], crc32.ChecksumIEEE(data))
	copy(rec[recHeaderSize:], data)
	if _, err := d.f.WriteAt(rec, d.size); err != nil {
		return fmt.Errorf("pagestore: append: %w", err)
	}
	if d.sync {
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("pagestore: fsync: %w", err)
		}
	}
	d.index[id] = recordPos{off: d.size + recHeaderSize, length: uint32(len(data))}
	d.size += int64(len(rec))
	d.bytes += uint64(len(data))
	return nil
}

// Get implements Store.
func (d *Disk) Get(id wire.PageID, off, length uint32) ([]byte, error) {
	d.mu.RLock()
	pos, ok := d.index[id]
	f := d.f
	d.mu.RUnlock()
	if f == nil {
		return nil, errors.New("pagestore: store closed")
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if uint64(off) > uint64(pos.length) {
		return nil, fmt.Errorf("%w: offset %d beyond page of %d bytes", ErrBadRange, off, pos.length)
	}
	n := pos.length - off
	if length != wire.WholePage {
		if uint64(off)+uint64(length) > uint64(pos.length) {
			return nil, fmt.Errorf("%w: [%d,+%d) beyond page of %d bytes", ErrBadRange, off, length, pos.length)
		}
		n = length
	}
	out := make([]byte, n)
	if _, err := d.f.ReadAt(out, pos.off+int64(off)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("pagestore: read page %v: %w", id, err)
	}
	return out, nil
}

// Has implements Store.
func (d *Disk) Has(id wire.PageID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.index[id]
	return ok
}

// Stats implements Store.
func (d *Disk) Stats() (pages, bytes uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return uint64(len(d.index)), d.bytes
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}
