package pagestore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"blobseer/internal/seglog"
	"blobseer/internal/wire"
)

// Disk is the durable Store: a segmented, CRC-framed page log with an
// index snapshot for bounded-reopen recovery, group-committed fsyncs,
// a striped in-memory index, and a background compactor that rewrites
// mostly-dead segments. It is the data-path twin of the version
// manager's segmented WAL; see segment.go and snapshot.go for the
// on-disk formats and maintain.go for the snapshotter/compactor.
//
// Safety rule for space reclamation: the store itself never invents
// garbage. A page's bytes are only ever dropped by compaction after the
// page was explicitly Deleted, and Delete's contract is that the caller
// (a garbage collector walking version metadata) has proven the page
// unreachable from every retained version. Everything still indexed
// survives any crash/compaction interleaving byte-identical — the
// invariant the crash-injection suite asserts.
type Disk struct {
	base string
	opts DiskOptions

	// stripes spread index lookups over independent RW locks so reads
	// never serialize behind writes to unrelated pages.
	stripes [indexStripes]indexStripe

	// stateMu makes index snapshots a consistent cut: the exclusive
	// committer (the group-commit leader, or a serial appender) holds it
	// shared across commit+apply via the committer's Outer hook — never
	// the appenders themselves, so no Put parks for the fsync while
	// holding it — and the snapshotter holds it exclusively only while
	// rolling the active segment and capturing the index. Records queued
	// behind an exclusive capture commit into the post-roll segment and
	// index afterwards, which keeps the captured index exactly the replay
	// of the covered segments. Readers never touch it. Lock order:
	// stateMu, then wmu, then segMu/seg.mu, then stripe locks. The
	// machine-checked form of that order (enforced by the lockorder
	// analyzer, see cmd/blobseer-vet) is:
	//
	//blobseer:lockorder maintMu < stateMu < wmu < segMu < indexStripe.mu
	//blobseer:lockorder wmu < segment.mu < indexStripe.mu
	stateMu sync.RWMutex

	// segMu guards the segment table. Segments are never removed from
	// it (compaction rewrites in place), so a pointer read under RLock
	// stays valid forever.
	segMu sync.RWMutex
	segs  map[uint32]*segment

	// wmu guards the writer state: the active-segment pointer, the
	// group-commit queue and shutdown. The write+fsync itself runs
	// outside wmu by the unique leader — the leader/batch protocol lives
	// in seglog.Committer, which borrows wmu.
	wmu    sync.Mutex
	active *segment
	comm   seglog.Committer[*diskAppend]

	closed  atomic.Bool
	nextGen atomic.Uint64 // last generation handed out

	pages     atomic.Uint64 // live pages
	dataBytes atomic.Uint64 // live page payload bytes (Stats)
	appends   atomic.Uint64 // records accepted
	syncs     atomic.Uint64 // fsyncs issued

	// Maintenance (snapshot + compaction) machinery, see maintain.go.
	// maintTrack owns the auto-snapshot countdown and the dirty page set
	// for incremental captures; mutators mark every index change there
	// (applyBatch inserts/drops, compaction retargets).
	maintMu     sync.Mutex
	maintTrack  seglog.Tracker[wire.PageID, indexEntry]
	snapPause   atomic.Int64 // last capture's stop-the-world ns (A7)
	snapRuns    atomic.Uint64
	compactRuns atomic.Uint64
	maint       *seglog.Maintainer
	recStats    RecoveryStats

	// crashHook is the test-only maintenance fault injector.
	crashHook func(point string) error
}

const (
	indexStripes = 64

	// defaultSegmentBytes is the roll threshold when the options leave
	// SegmentBytes zero.
	defaultSegmentBytes = 64 << 20
)

type indexStripe struct {
	mu    sync.RWMutex
	pages map[wire.PageID]indexEntry
}

// DiskOptions tunes a Disk store. The zero value reproduces the
// pre-segmentation behaviour: serial unsynced appends, 64 MB segments,
// no automatic snapshots or compaction.
type DiskOptions struct {
	// Sync forces page records to disk before Put returns. Slower, but
	// a crash loses at most in-flight pages instead of the OS
	// write-back window. Pair with GroupCommit so concurrent writers
	// share fsyncs.
	Sync bool
	// GroupCommit coalesces concurrent Puts/Deletes into one
	// write (+ at most one fsync): the first appender to find no active
	// leader writes the whole queued batch. Off, every record performs
	// its own write (+fsync when Sync) under the writer lock — the
	// ablation baseline.
	GroupCommit bool
	// SegmentBytes rolls the log into a fresh segment file once the
	// active one exceeds this many bytes (default 64 MB). Compaction
	// rewrites whole sealed segments, so smaller segments reclaim at a
	// finer grain for more files.
	SegmentBytes int64
	// SnapshotEvery, when positive, writes an index snapshot
	// automatically after that many appended records, bounding reopen
	// replay by the interval. Zero disables automatic snapshots;
	// Snapshot remains available on demand either way.
	SnapshotEvery int
	// CompactRatio, when positive, makes the background compactor
	// rewrite any sealed segment whose live-byte ratio falls below this
	// threshold (0 < ratio < 1), dropping records of Deleted pages.
	// Zero disables automatic compaction; Compact remains available on
	// demand.
	CompactRatio float64
}

// diskAppend is one queued record and its appender's parking spot.
type diskAppend struct {
	frame   []byte
	kind    byte
	id      wire.PageID
	dataLen uint32

	// Filled by the committer for puts: where the page body landed.
	seg     uint32
	dataOff int64

	cell seglog.Cell
}

func (a *diskAppend) Cell() *seglog.Cell { return &a.cell }

// RecoveryStats describes what one OpenDisk did: how much of the index
// came from the snapshot and how much had to be replayed by scanning
// segments. With automatic snapshots, RecordsReplayed stays bounded by
// SnapshotEvery no matter how many pages the store holds.
type RecoveryStats struct {
	SnapshotLoaded    bool // a valid index snapshot seeded the index
	SnapshotPages     int  // pages restored from the snapshot
	SegmentsOnDisk    int  // segment files found or created at open
	SegmentsRescanned int  // segments scanned record-by-record
	StaleRescanned    int  // of those, rewritten after the snapshot (compaction crash)
	RecordsReplayed   int  // records applied by rescans
	LegacyMigrated    bool // a pre-segmentation single-file log was converted
}

// OpenDisk opens (creating if needed) the segmented page store rooted
// at path and rebuilds the index: it loads the newest valid index
// snapshot, verifies each covered segment's generation, and rescans
// only the tail (plus any segment a crashed compaction rewrote). A torn
// record at the tail of the highest segment is truncated away; a torn
// or corrupt snapshot degrades to a full rescan; a single-file log from
// before segmentation is migrated in place.
func OpenDisk(path string, opts DiskOptions) (*Disk, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("pagestore: create dir: %w", err)
	}
	d := &Disk{base: path, opts: opts, segs: make(map[uint32]*segment)}
	for i := range d.stripes {
		d.stripes[i].pages = make(map[wire.PageID]indexEntry)
	}
	d.comm = seglog.Committer[*diskAppend]{
		Mu:        &d.wmu,
		Serial:    !opts.GroupCommit,
		Closed:    d.closed.Load,
		ErrClosed: errStoreClosed,
		Commit:    d.commit,
		Apply:     d.applyBatch,
		// The exclusive committer holds the snapshot cut shared across
		// commit+apply, so appenders never sit in the fsync with stateMu
		// held and a capture's exclusive acquisition fences out in-flight
		// batches (see the stateMu field docs).
		Outer: func() func() { d.stateMu.RLock(); return d.stateMu.RUnlock },
		// Re-check closed before rolling: Close may have finished while
		// the commit ran outside wmu, and a roll now would create a
		// stray segment after closeFiles already swept the table.
		MaybeRoll: func() {
			if !d.closed.Load() && d.active.size.Load() >= d.opts.SegmentBytes {
				d.rollLocked() // best effort: a failed roll leaves the oversized segment active
			}
		},
	}
	if err := d.recover(); err != nil {
		d.closeFiles()
		return nil, err
	}
	// Replayed tail records count toward the auto-snapshot interval, or
	// a crash-looping store whose runs each log fewer than SnapshotEvery
	// records would grow its tail without bound.
	d.maintTrack.AddEvents(d.recStats.RecordsReplayed)
	if opts.SnapshotEvery > 0 || opts.CompactRatio > 0 {
		d.maint = seglog.NewMaintainer(d.maintainPass)
		d.maint.Start()
		if opts.SnapshotEvery > 0 && d.recStats.RecordsReplayed >= opts.SnapshotEvery {
			d.nudgeMaintain()
		}
	}
	return d, nil
}

func (d *Disk) stripe(id wire.PageID) *indexStripe {
	// The low id bytes are a counter; the first bytes are random. Mix a
	// few for an even spread (same scheme as Mem).
	return &d.stripes[(uint(id[0])^uint(id[8])^uint(id[15]))%indexStripes]
}

// recover rebuilds the index from disk. See the package comments in
// segment.go and snapshot.go for the crash-consistency argument.
func (d *Disk) recover() error {
	base := d.base
	// Leftover tmp files from interrupted maintenance are garbage: only
	// the atomic renames ever activate them.
	seglog.RemoveTmp(base)

	segIdxs, err := listSegments(base)
	if err != nil {
		return err
	}
	if len(segIdxs) == 0 {
		migrated, err := migrateLegacy(base)
		if err != nil {
			return err
		}
		if migrated {
			d.recStats.LegacyMigrated = true
			if segIdxs, err = listSegments(base); err != nil {
				return err
			}
		}
	} else if info, err := os.Stat(base); err == nil && info.Mode().IsRegular() {
		// A legacy log next to segments is the leftover of a migration
		// that crashed between activating segment 1 and removing it.
		if err := os.Remove(base); err != nil {
			return fmt.Errorf("pagestore: remove migrated legacy log: %w", err)
		}
	}

	// A roll that crashed before completing the 16-byte header leaves a
	// short highest segment with nothing in it; drop it and append to
	// its predecessor.
	if n := len(segIdxs); n > 0 {
		p := segmentPath(base, segIdxs[n-1])
		if info, err := os.Stat(p); err == nil && info.Size() < segHeaderSize {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("pagestore: remove torn segment: %w", err)
			}
			segIdxs = segIdxs[:n-1]
		}
	}

	snap, snapErr := loadSnapshot(snapshotPath(base))
	if snapErr != nil {
		// Torn or corrupt (crash racing the rename, disk fault): data
		// segments are never deleted, so a full rescan recovers
		// everything — the snapshot only ever buys speed.
		snap = nil
	}

	if len(segIdxs) == 0 {
		if snap != nil && len(snap.meta.Segs) > 0 {
			return fmt.Errorf("pagestore: snapshot covers %d segments but none exist on disk", len(snap.meta.Segs))
		}
		seg, err := d.createSegment(1, 1)
		if err != nil {
			return err
		}
		d.segs[1] = seg
		d.active = seg
		d.nextGen.Store(1)
		d.recStats.SegmentsOnDisk = 1
		return nil
	}
	for i, idx := range segIdxs {
		if idx != uint32(i+1) {
			return fmt.Errorf("pagestore: segment %06d missing (found %06d): pages may be lost", i+1, idx)
		}
	}
	if snap != nil && len(snap.meta.Segs) > len(segIdxs) {
		return fmt.Errorf("pagestore: snapshot covers %d segments, only %d exist: pages may be lost",
			len(snap.meta.Segs), len(segIdxs))
	}

	// Open every segment and validate its header.
	var maxGen uint64
	for _, idx := range segIdxs {
		p := segmentPath(base, idx)
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("pagestore: open segment: %w", err)
		}
		gen, err := segFmt.ReadHeader(f, p)
		if err != nil {
			f.Close()
			return err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("pagestore: stat segment: %w", err)
		}
		seg := &segment{idx: idx, f: f, gen: gen}
		seg.size.Store(info.Size())
		d.segs[idx] = seg
		if gen > maxGen {
			maxGen = gen
		}
	}
	d.recStats.SegmentsOnDisk = len(segIdxs)

	// Seed the index from the snapshot where the generations still
	// match; a mismatch means a compaction rewrote that segment after
	// the snapshot (its offsets are stale) and it joins the rescan.
	highest := segIdxs[len(segIdxs)-1]
	stale := make(map[uint32]bool)
	var rescan []uint32
	if snap != nil {
		d.recStats.SnapshotLoaded = true
		for i, sm := range snap.meta.Segs {
			idx := uint32(i + 1)
			if d.segs[idx].gen != sm.Gen {
				stale[idx] = true
				rescan = append(rescan, idx)
			}
		}
		for _, e := range snap.entries {
			if stale[e.seg] {
				continue
			}
			seg := d.segs[e.seg]
			if e.off+int64(e.len) > seg.size.Load() {
				return fmt.Errorf("pagestore: snapshot entry for page %v beyond segment %06d", e.id, e.seg)
			}
			d.stripe(e.id).pages[e.id] = e.indexEntry
			seg.liveBytes.Add(framedRecBytes + int64(e.len))
			d.pages.Add(1)
			d.dataBytes.Add(uint64(e.len))
			d.recStats.SnapshotPages++
		}
		if snap.meta.HasMeta {
			// v2 snapshots persist each covered segment's tombstone bytes,
			// so seeding is exact: a v1 snapshot had no way to recount them
			// (the entries are only the live index) and left tombBytes at
			// zero, inflating the reclaim estimate into one spurious no-op
			// rewrite of a tombstone-heavy segment per reopen. Stale
			// segments recompute during their rescan, and the highest is
			// skipped because its rescan below re-adds every tombstone.
			for i, sm := range snap.meta.Segs {
				idx := uint32(i + 1)
				if stale[idx] || idx == highest {
					continue
				}
				d.segs[idx].tombBytes.Store(sm.Tomb)
			}
		}
		for idx := uint32(len(snap.meta.Segs) + 1); idx <= uint32(len(segIdxs)); idx++ {
			rescan = append(rescan, idx)
		}
		// The highest segment is rescanned even when the snapshot covers
		// it: a torn roll can demote the active segment back into the
		// covered range, after which post-snapshot records append there
		// — and a torn tail must be truncated before new appends land
		// behind it. Duplicate puts are skipped, so re-visiting records
		// the snapshot already indexed is a no-op.
		if len(rescan) == 0 || rescan[len(rescan)-1] != highest {
			rescan = append(rescan, highest)
		}
	} else {
		for _, idx := range segIdxs {
			rescan = append(rescan, idx)
		}
	}
	d.recStats.StaleRescanned = len(stale)

	// Rescan in index order — the chronological write order, since
	// records never move between segments. dead remembers tombstones
	// seen during this pass so a put record can never resurrect a page
	// whose tombstone sits in an earlier rescanned segment.
	dead := make(map[wire.PageID]bool)
	for _, idx := range rescan {
		seg := d.segs[idx]
		size, err := scanSegment(seg.f, segmentPath(base, idx), idx == highest, func(sr scannedRecord) error {
			d.recStats.RecordsReplayed++
			switch sr.rec.kind {
			case recTomb:
				seg.tombBytes.Add(framedRecBytes)
				dead[sr.rec.id] = true
				d.dropEntry(sr.rec.id)
			case recPut:
				if dead[sr.rec.id] {
					return nil
				}
				st := d.stripe(sr.rec.id)
				if _, dup := st.pages[sr.rec.id]; dup {
					return nil // duplicate record; first wins
				}
				st.pages[sr.rec.id] = indexEntry{seg: idx, off: sr.dataOff, len: sr.dataLen}
				seg.liveBytes.Add(framedRecBytes + int64(sr.dataLen))
				d.pages.Add(1)
				d.dataBytes.Add(uint64(sr.dataLen))
			}
			return nil
		})
		if err != nil {
			return err
		}
		seg.size.Store(size)
		d.recStats.SegmentsRescanned++
	}

	d.active = d.segs[highest]
	d.nextGen.Store(maxGen)
	return nil
}

// dropEntry removes id from the index, adjusting the counters. Used by
// recovery and by the tombstone apply path.
func (d *Disk) dropEntry(id wire.PageID) {
	st := d.stripe(id)
	st.mu.Lock()
	e, ok := st.pages[id]
	if ok {
		delete(st.pages, id)
	}
	st.mu.Unlock()
	if !ok {
		return
	}
	d.segMu.RLock()
	seg := d.segs[e.seg]
	d.segMu.RUnlock()
	seg.liveBytes.Add(-(framedRecBytes + int64(e.len)))
	d.pages.Add(^uint64(0))
	d.dataBytes.Add(^(uint64(e.len) - 1))
}

// createSegment creates and opens a fresh segment file with a durable
// header.
func (d *Disk) createSegment(idx uint32, gen uint64) (*segment, error) {
	p := segmentPath(d.base, idx)
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create segment: %w", err)
	}
	if err := segFmt.WriteHeader(f, gen); err != nil {
		f.Close()
		return nil, err
	}
	if d.opts.Sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("pagestore: sync segment header: %w", err)
		}
		// The directory entry must be durable before any record commits
		// into the new segment, or a crash could lose a whole synced
		// segment while keeping its successor.
		if err := seglog.SyncDir(filepath.Dir(d.base)); err != nil {
			f.Close()
			return nil, fmt.Errorf("pagestore: sync dir: %w", err)
		}
	}
	seg := &segment{idx: idx, f: f, gen: gen}
	seg.size.Store(segHeaderSize)
	return seg, nil
}

// rollLocked seals the active segment and opens the next one. Called
// with wmu held, and only when no commit is in flight: by the committer
// itself after its batch, or by the snapshotter while every mutator is
// excluded via stateMu. The sealed segment's file stays open — unlike a
// WAL segment it still serves page reads.
func (d *Disk) rollLocked() error {
	seg, err := d.createSegment(d.active.idx+1, d.nextGen.Add(1))
	if err != nil {
		return err
	}
	d.segMu.Lock()
	d.segs[seg.idx] = seg
	d.segMu.Unlock()
	d.active = seg
	return nil
}

// Put implements Store: it durably appends a put record (sharing
// write+fsync with concurrent appenders when GroupCommit is on) and
// then indexes the page.
func (d *Disk) Put(id wire.PageID, data []byte) error {
	if d.closed.Load() {
		return errStoreClosed
	}
	st := d.stripe(id)
	st.mu.RLock()
	_, dup := st.pages[id]
	st.mu.RUnlock()
	if dup {
		return nil // immutable pages: idempotent
	}
	return d.comm.Append(&diskAppend{
		frame:   segFmt.Frame((&segRecord{kind: recPut, id: id, data: data}).encode()),
		kind:    recPut,
		id:      id,
		dataLen: uint32(len(data)),
		cell:    seglog.NewCell(),
	})
}

// Delete implements Store: it durably appends a tombstone and drops the
// page from the index, making its bytes reclaimable by compaction.
// Deleting an unknown page is a no-op.
func (d *Disk) Delete(id wire.PageID) error {
	if d.closed.Load() {
		return errStoreClosed
	}
	st := d.stripe(id)
	st.mu.RLock()
	_, ok := st.pages[id]
	st.mu.RUnlock()
	if !ok {
		return nil
	}
	return d.comm.Append(&diskAppend{
		frame: segFmt.Frame((&segRecord{kind: recTomb, id: id}).encode()),
		kind:  recTomb,
		id:    id,
		cell:  seglog.NewCell(),
	})
}

// commit appends the batch contiguously to the active segment with a
// single write and at most one fsync, and stamps each record with where
// its body landed. Only one committer runs at a time (the leader, or a
// serial appender under wmu), so the active-segment fields need no
// extra synchronization: the segment cannot roll while a commit is in
// flight. On error nothing is applied. The committer holds stateMu
// shared across commit+apply (the Outer hook, see OpenDisk), so a
// snapshot capture never splits a durable record from its index change
// — without any appender holding the cut lock across its park.
func (d *Disk) commit(batch []*diskAppend) error {
	d.appends.Add(uint64(len(batch)))
	seg := d.active
	base := seg.size.Load()
	var n int
	for _, a := range batch {
		n += len(a.frame)
	}
	out := make([]byte, 0, n)
	off := base
	for _, a := range batch {
		a.seg = seg.idx
		a.dataOff = off + recHeaderSize + recPayloadMin
		out = append(out, a.frame...)
		off += int64(len(a.frame))
	}
	if _, err := seg.f.WriteAt(out, base); err != nil {
		return fmt.Errorf("pagestore: append: %w", err)
	}
	if d.opts.Sync {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("pagestore: fsync: %w", err)
		}
		d.syncs.Add(1)
	}
	seg.size.Store(off)
	return nil
}

// applyBatch indexes a durable batch: puts insert (first of a duplicate
// pair wins), tombstones drop. Called with wmu held by the committer.
func (d *Disk) applyBatch(batch []*diskAppend) {
	var nudge bool
	for _, a := range batch {
		d.maintTrack.Mark(a.id)
		switch a.kind {
		case recPut:
			// Resolve the segment before taking the stripe lock:
			// segLive takes segMu, which the declared lock order puts
			// before stripe locks (blobseer-vet: lockorder).
			seg := d.segLive(a.seg)
			st := d.stripe(a.id)
			st.mu.Lock()
			if _, dup := st.pages[a.id]; !dup {
				st.pages[a.id] = indexEntry{seg: a.seg, off: a.dataOff, len: a.dataLen}
				seg.liveBytes.Add(framedRecBytes + int64(a.dataLen))
				d.pages.Add(1)
				d.dataBytes.Add(uint64(a.dataLen))
			}
			st.mu.Unlock()
		case recTomb:
			d.segLive(a.seg).tombBytes.Add(framedRecBytes)
			d.dropEntry(a.id)
			if d.opts.CompactRatio > 0 {
				nudge = true
			}
		}
	}
	events := d.maintTrack.AddEvents(len(batch))
	if n := d.opts.SnapshotEvery; n > 0 && events >= uint64(n) {
		nudge = true
	}
	if nudge {
		d.nudgeMaintain()
	}
}

func (d *Disk) segLive(idx uint32) *segment {
	d.segMu.RLock()
	seg := d.segs[idx]
	d.segMu.RUnlock()
	return seg
}

// Get implements Store.
func (d *Disk) Get(id wire.PageID, off, length uint32) ([]byte, error) {
	if d.closed.Load() {
		return nil, errStoreClosed
	}
	st := d.stripe(id)
	st.mu.RLock()
	e, ok := st.pages[id]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	seg := d.segLive(e.seg)
	seg.mu.RLock()
	defer seg.mu.RUnlock()
	// Re-fetch under the segment lock: a compaction may have moved the
	// body between the lookup and here, and it swaps the file handle and
	// rewrites the entries as one unit under seg.mu. Records never move
	// between segments, so the entry still points into seg.
	st.mu.RLock()
	e, ok = st.pages[id]
	st.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if uint64(off) > uint64(e.len) {
		return nil, fmt.Errorf("%w: offset %d beyond page of %d bytes", ErrBadRange, off, e.len)
	}
	n := e.len - off
	if length != wire.WholePage {
		if uint64(off)+uint64(length) > uint64(e.len) {
			return nil, fmt.Errorf("%w: [%d,+%d) beyond page of %d bytes", ErrBadRange, off, length, e.len)
		}
		n = length
	}
	out := make([]byte, n)
	if n > 0 {
		if _, err := seg.f.ReadAt(out, e.off+int64(off)); err != nil {
			if errors.Is(err, fs.ErrClosed) {
				return nil, errStoreClosed // lost the race with Close
			}
			return nil, fmt.Errorf("pagestore: read page %v: %w", id, err)
		}
	}
	return out, nil
}

// Has implements Store.
func (d *Disk) Has(id wire.PageID) bool {
	st := d.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.pages[id]
	return ok
}

// Stats implements Store.
func (d *Disk) Stats() (pages, bytes uint64) {
	return d.pages.Load(), d.dataBytes.Load()
}

// WriteStats reports records appended and fsyncs issued since open.
// Group commit shows up as syncs < appends.
func (d *Disk) WriteStats() (appends, syncs uint64) {
	return d.appends.Load(), d.syncs.Load()
}

// LogBytes reports the store's on-disk footprint: the summed size of
// every segment file. Compaction shrinks it.
func (d *Disk) LogBytes() int64 {
	d.segMu.RLock()
	defer d.segMu.RUnlock()
	var n int64
	for _, seg := range d.segs {
		n += seg.size.Load()
	}
	return n
}

// RecoveryStats reports what this open of the store did: whether a
// snapshot seeded the index and how many records had to be rescanned.
func (d *Disk) RecoveryStats() RecoveryStats { return d.recStats }

// closeFiles closes every segment file. The handles deliberately stay
// non-nil: a group-commit leader mid-write or a reader that slipped
// past the closed check simply gets fs.ErrClosed from the file instead
// of a nil dereference, exactly like the version WAL's shutdown.
func (d *Disk) closeFiles() error {
	d.segMu.Lock()
	defer d.segMu.Unlock()
	var first error
	for _, seg := range d.segs {
		seg.mu.Lock()
		if err := seg.f.Close(); err != nil && first == nil && !errors.Is(err, fs.ErrClosed) {
			first = err
		}
		seg.mu.Unlock()
	}
	return first
}

// Close implements Store. It is idempotent: queued appenders fail with
// a closed error, in-flight maintenance finishes first, and every
// segment file is closed.
func (d *Disk) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	d.wmu.Lock()
	d.comm.FailQueuedLocked(errStoreClosed)
	d.wmu.Unlock()
	d.maint.Stop()
	// Barrier: an in-flight snapshot or compaction finishes (its output
	// is valid and worth keeping) before the files close under it.
	d.maintMu.Lock()
	err := d.closeFiles()
	d.maintMu.Unlock()
	return err
}
