package pagestore

import (
	"bytes"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
)

// gateCommit wraps the store's commit hook so the next batch parks
// inside the (simulated) write+fsync until release is closed. The test
// arms it with gated; only the first gated batch parks. Installed
// before any concurrent traffic, so swapping the hook is race-free.
func gateCommit(d *Disk, gated *atomic.Bool, entered chan struct{}, release chan struct{}) {
	inner := d.comm.Commit
	d.comm.Commit = func(batch []*diskAppend) error {
		if gated.CompareAndSwap(true, false) {
			close(entered)
			<-release
		}
		return inner(batch)
	}
}

// TestReadsOverlapParkedCommit pins the early-lock-release contract:
// while the group-commit leader sits in the fsync it holds the snapshot
// cut shared, never the write mutex or the index stripes, so reads
// proceed, later appenders queue without holding any lock, and an
// exclusive capture waits only for the in-flight batch — not the queue.
// Every step synchronizes on channels; a regression deadlocks and the
// test times out.
func TestReadsOverlapParkedCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{Sync: true, GroupCommit: true, SegmentBytes: 1 << 20})
	defer d.Close()

	if err := d.Put(pidN(1), pageData(1)); err != nil {
		t.Fatal(err)
	}

	var gated atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	gateCommit(d, &gated, entered, release)
	gated.Store(true)

	put2 := make(chan error, 1)
	go func() { put2 <- d.Put(pidN(2), pageData(2)) }()
	<-entered

	// The leader is parked mid-commit. Reads of durable pages must not
	// block behind it...
	got, err := d.Get(pidN(1), 0, uint32(len(pageData(1))))
	if err != nil || !bytes.Equal(got, pageData(1)) {
		t.Fatalf("read while commit parked: %v (%d bytes)", err, len(got))
	}
	// ...and the parked put is not yet visible: the index applies only
	// after durability.
	if d.Has(pidN(2)) {
		t.Fatal("page visible before its batch committed")
	}

	// A second appender queues behind the parked leader without holding
	// the index lock while it waits.
	put3 := make(chan error, 1)
	go func() { put3 <- d.Put(pidN(3), pageData(3)) }()
	for {
		d.wmu.Lock()
		n := d.comm.QueueLenLocked()
		d.wmu.Unlock()
		if n >= 1 {
			break
		}
		runtime.Gosched()
	}

	// An exclusive capture can now be requested: it waits for the
	// in-flight batch only, so once the gate opens everything drains.
	snapDone := make(chan error, 1)
	go func() { snapDone <- d.Snapshot() }()
	close(release)

	if err := <-put2; err != nil {
		t.Fatalf("parked put: %v", err)
	}
	if err := <-put3; err != nil {
		t.Fatalf("queued put: %v", err)
	}
	if err := <-snapDone; err != nil {
		t.Fatalf("snapshot during parked commit: %v", err)
	}
	if d.Snapshots() != 1 {
		t.Fatalf("snapshots = %d, want 1", d.Snapshots())
	}
	for i := 1; i <= 3; i++ {
		got, err := d.Get(pidN(i), 0, uint32(len(pageData(i))))
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d after drain: %v", i, err)
		}
	}

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	for i := 1; i <= 3; i++ {
		got, err := d2.Get(pidN(i), 0, uint32(len(pageData(i))))
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d after reopen: %v", i, err)
		}
	}
}

// TestSnapshotFailureKeepsCountdown pins the snapshot-countdown fix: a
// publish failure must leave the event countdown (and the dirty set)
// intact, so the very next maintenance pass retries instead of waiting
// for another SnapshotEvery records. The old code zeroed the counter
// inside capture, before the publish could fail.
func TestSnapshotFailureKeepsCountdown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	// No SnapshotEvery at open: the store runs no background maintainer,
	// so the test can drive maintainPass deterministically.
	d := mustOpen(t, path, DiskOptions{SegmentBytes: 1 << 20})
	defer d.Close()
	d.opts.SnapshotEvery = 4

	for i := 1; i <= 6; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.crashHook = func(point string) error {
		if point == crashSnapTmpWritten {
			return errInjected
		}
		return nil
	}
	if !d.maintainPass() {
		t.Fatal("maintainPass reported closed")
	}
	if n := d.Snapshots(); n != 0 {
		t.Fatalf("snapshots after failed publish = %d, want 0", n)
	}
	if ev := d.maintTrack.Events(); ev < 6 {
		t.Fatalf("countdown consumed by failed snapshot: events = %d, want >= 6", ev)
	}

	// No new records: the retained countdown alone must trigger the retry.
	d.crashHook = nil
	if !d.maintainPass() {
		t.Fatal("maintainPass reported closed")
	}
	if n := d.Snapshots(); n != 1 {
		t.Fatalf("snapshots after retry = %d, want 1", n)
	}
	if ev := d.maintTrack.Events(); ev >= 4 {
		t.Fatalf("countdown not consumed by successful snapshot: events = %d", ev)
	}

	// The retried snapshot must cover everything: one more record, and a
	// reopen replays only that tail.
	if err := d.Put(pidN(7), pageData(7)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	rs := d2.RecoveryStats()
	if !rs.SnapshotLoaded {
		t.Fatal("reopen did not load the retried snapshot")
	}
	if rs.RecordsReplayed != 1 {
		t.Fatalf("records replayed = %d, want 1", rs.RecordsReplayed)
	}
	for i := 1; i <= 7; i++ {
		got, err := d2.Get(pidN(i), 0, uint32(len(pageData(i))))
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d after reopen: %v", i, err)
		}
	}
}
