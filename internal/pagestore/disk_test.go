package pagestore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"blobseer/internal/wire"
)

// pidN builds a deterministic page id from an integer.
func pidN(n int) wire.PageID {
	var id wire.PageID
	binary.LittleEndian.PutUint64(id[0:8], uint64(n)*0x9E3779B97F4A7C15)
	binary.LittleEndian.PutUint64(id[8:16], uint64(n))
	return id
}

func pageData(n int) []byte {
	return bytes.Repeat([]byte{byte(n), byte(n >> 8)}, 20+n%60)
}

func mustOpen(t *testing.T, path string, opts DiskOptions) *Disk {
	t.Helper()
	d, err := OpenDisk(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRollsSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{SegmentBytes: 256})
	const n = 40
	for i := 0; i < n; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("only %d segments after %d puts with tiny roll threshold", len(segs), n)
	}
	// Every page readable while spread over many segments.
	for i := 0; i < n; i++ {
		got, err := d.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	d.Close()

	// And after a full-rescan reopen.
	d2 := mustOpen(t, path, DiskOptions{SegmentBytes: 256})
	defer d2.Close()
	if st := d2.RecoveryStats(); st.SnapshotLoaded || st.SegmentsRescanned != len(segs) {
		t.Fatalf("recovery stats = %+v, want full rescan of %d segments", st, len(segs))
	}
	for i := 0; i < n; i++ {
		got, err := d2.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d after reopen: %v", i, err)
		}
	}
}

func TestDiskSnapshotBoundsReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	opts := DiskOptions{SegmentBytes: 512}
	d := mustOpen(t, path, opts)
	for i := 0; i < 50; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Tail records after the snapshot: some puts, one delete.
	for i := 50; i < 60; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete(pidN(3)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	st := d2.RecoveryStats()
	if !st.SnapshotLoaded {
		t.Fatalf("snapshot not loaded: %+v", st)
	}
	if st.SnapshotPages != 50 {
		t.Fatalf("snapshot pages = %d, want 50", st.SnapshotPages)
	}
	// Only the tail (10 puts + 1 tombstone) replays, not all 61 records.
	if st.RecordsReplayed != 11 {
		t.Fatalf("records replayed = %d, want 11 (stats %+v)", st.RecordsReplayed, st)
	}
	for i := 0; i < 60; i++ {
		if i == 3 {
			if d2.Has(pidN(3)) {
				t.Fatal("deleted page resurrected by snapshot+tail recovery")
			}
			continue
		}
		got, err := d2.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if pages, _ := d2.Stats(); pages != 59 {
		t.Fatalf("pages = %d, want 59", pages)
	}
}

func TestDiskDeleteSurvivesRestartAndFullRescan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{})
	d.Put(pidN(1), pageData(1))
	d.Put(pidN(2), pageData(2))
	if err := d.Delete(pidN(1)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// No snapshot was ever written: the tombstone alone must keep the
	// page dead across a full rescan.
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	if d2.Has(pidN(1)) {
		t.Fatal("tombstone ignored by full rescan")
	}
	if !d2.Has(pidN(2)) {
		t.Fatal("live page lost")
	}
}

func TestDiskCompactionShrinksAndPreservesLivePages(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	opts := DiskOptions{SegmentBytes: 1024}
	d := mustOpen(t, path, opts)
	const n = 200
	live := make(map[int][]byte)
	for i := 0; i < n; i++ {
		data := pageData(i)
		if err := d.Put(pidN(i), data); err != nil {
			t.Fatal(err)
		}
		live[i] = data
	}
	// Churn: delete three quarters — superseded versions' pages.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			if err := d.Delete(pidN(i)); err != nil {
				t.Fatal(err)
			}
			delete(live, i)
		}
	}
	before := d.LogBytes()
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	after := d.LogBytes()
	if after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	if d.Compactions() == 0 {
		t.Fatal("no segment was rewritten")
	}
	// Every retained page byte-identical, every deleted page still gone.
	check := func(s *Disk) {
		t.Helper()
		for i := 0; i < n; i++ {
			if data, ok := live[i]; ok {
				got, err := s.Get(pidN(i), 0, wire.WholePage)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("live page %d after compaction: %v", i, err)
				}
			} else if s.Has(pidN(i)) {
				t.Fatalf("deleted page %d resurrected", i)
			}
		}
	}
	check(d)
	d.Close()
	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	check(d2)
	if pages, _ := d2.Stats(); pages != uint64(len(live)) {
		t.Fatalf("pages after reopen = %d, want %d", pages, len(live))
	}
}

func TestDiskAutoMaintenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	opts := DiskOptions{SegmentBytes: 512, SnapshotEvery: 25, CompactRatio: 0.5}
	d := mustOpen(t, path, opts)
	for i := 0; i < 100; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 90; i++ {
		if err := d.Delete(pidN(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The background maintainer runs asynchronously; poke it via the
	// deterministic on-demand entry points and verify the automatic ones
	// also fired at least once by now or after an explicit pass.
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Snapshots() == 0 || d.Compactions() == 0 {
		t.Fatalf("maintenance did not run: %d snapshots, %d compactions", d.Snapshots(), d.Compactions())
	}
	d.Close()
	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	for i := 90; i < 100; i++ {
		got, err := d2.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
}

func TestDiskGroupCommitConcurrentTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	opts := DiskOptions{Sync: true, GroupCommit: true, SegmentBytes: 4096, SnapshotEvery: 64, CompactRatio: 0.6}
	d := mustOpen(t, path, opts)
	const workers = 8
	const perWorker = 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := w*perWorker + i
				if err := d.Put(pidN(n), pageData(n)); err != nil {
					t.Errorf("put %d: %v", n, err)
					return
				}
				got, err := d.Get(pidN(n), 0, wire.WholePage)
				if err != nil || !bytes.Equal(got, pageData(n)) {
					t.Errorf("get %d: %v", n, err)
					return
				}
				if i%3 == 0 {
					if err := d.Delete(pidN(n)); err != nil {
						t.Errorf("delete %d: %v", n, err)
						return
					}
				}
			}
		}(w)
	}
	// Maintenance racing the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := d.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
			if err := d.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	appends, syncs := d.WriteStats()
	if appends == 0 || syncs == 0 {
		t.Fatalf("write stats = %d appends, %d syncs", appends, syncs)
	}
	if syncs >= appends {
		t.Fatalf("group commit shared no fsyncs: %d syncs for %d appends", syncs, appends)
	}
	want := make(map[int]bool)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			n := w*perWorker + i
			want[n] = i%3 != 0
		}
	}
	d.Close()
	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	for n, alive := range want {
		if alive {
			got, err := d2.Get(pidN(n), 0, wire.WholePage)
			if err != nil || !bytes.Equal(got, pageData(n)) {
				t.Fatalf("page %d after restart: %v", n, err)
			}
		} else if d2.Has(pidN(n)) {
			t.Fatalf("deleted page %d resurrected after restart", n)
		}
	}
}

func TestDiskLegacyLogMigrated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.log")
	// Hand-craft a pre-segmentation log: records framed as
	// magic | dataLen | id | crc | data, no file header.
	var legacy []byte
	want := map[int][]byte{}
	for i := 1; i <= 5; i++ {
		data := pageData(i)
		want[i] = data
		var hdr [legacyHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(data)))
		id := pidN(i)
		copy(hdr[8:24], id[:])
		binary.LittleEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(data))
		legacy = append(legacy, hdr[:]...)
		legacy = append(legacy, data...)
	}
	// Torn tail: half a header, as a crash mid-append would leave.
	legacy = append(legacy, 0xE5, 0x5E)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	d := mustOpen(t, path, DiskOptions{})
	if !d.RecoveryStats().LegacyMigrated {
		t.Fatalf("legacy log not migrated: %+v", d.RecoveryStats())
	}
	for i, data := range want {
		got, err := d.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("page %d after migration: %v", i, err)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("legacy file still present: %v", err)
	}
	// New writes and a clean reopen keep working on the migrated store.
	if err := d.Put(pidN(9), pageData(9)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	if pages, _ := d2.Stats(); pages != 6 {
		t.Fatalf("pages after migration reopen = %d, want 6", pages)
	}
}

func TestDiskRefusesSegmentGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		d.Put(pidN(i), pageData(i))
	}
	segs, _ := listSegments(path)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	d.Close()
	if err := os.Remove(segmentPath(path, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(path, DiskOptions{}); err == nil {
		t.Fatal("open succeeded with a missing segment")
	}
}

func TestDiskCorruptSnapshotFallsBackToRescan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{SegmentBytes: 512})
	for i := 0; i < 30; i++ {
		d.Put(pidN(i), pageData(i))
	}
	d.Delete(pidN(7))
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Flip a byte inside the snapshot payload.
	snapPath := snapshotPath(path)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[recHeaderSize+5] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, path, DiskOptions{SegmentBytes: 512})
	defer d2.Close()
	st := d2.RecoveryStats()
	if st.SnapshotLoaded {
		t.Fatalf("corrupt snapshot trusted: %+v", st)
	}
	for i := 0; i < 30; i++ {
		if i == 7 {
			if d2.Has(pidN(7)) {
				t.Fatal("deleted page resurrected by fallback rescan")
			}
			continue
		}
		got, err := d2.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(i)) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
}

func TestDiskAppendsIntoCoveredSegmentSurvive(t *testing.T) {
	// A torn roll can demote the active segment back into the range the
	// snapshot covers; records appended there afterwards must still be
	// replayed on the next open (regression: the covered-highest segment
	// was skipped entirely, silently dropping acknowledged puts).
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{})
	d.Put(pidN(1), pageData(1))
	if err := d.Snapshot(); err != nil { // rolls to segment 2, covers segment 1
		t.Fatal(err)
	}
	d.Close()
	// Tear the freshly rolled segment's header: open removes it and
	// makes covered segment 1 active again.
	if err := os.Truncate(segmentPath(path, 2), 3); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, path, DiskOptions{})
	if err := d2.Put(pidN(2), pageData(2)); err != nil {
		t.Fatal(err)
	}
	if err := d2.Delete(pidN(1)); err != nil {
		t.Fatal(err)
	}
	d2.Close()

	d3 := mustOpen(t, path, DiskOptions{})
	defer d3.Close()
	got, err := d3.Get(pidN(2), 0, wire.WholePage)
	if err != nil || !bytes.Equal(got, pageData(2)) {
		t.Fatalf("post-snapshot put into covered segment lost: %v", err)
	}
	if d3.Has(pidN(1)) {
		t.Fatal("post-snapshot delete into covered segment lost")
	}
	// A torn tail in that covered-highest segment must also be truncated
	// so future appends do not land behind garbage.
	appendBytes(t, segmentPath(path, 1), []byte{0xE5, 0x5E, 0x0B})
	d4 := mustOpen(t, path, DiskOptions{})
	defer d4.Close()
	if err := d4.Put(pidN(3), pageData(3)); err != nil {
		t.Fatal(err)
	}
	d4.Close()
	d5 := mustOpen(t, path, DiskOptions{})
	defer d5.Close()
	for _, n := range []int{2, 3} {
		got, err := d5.Get(pidN(n), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, pageData(n)) {
			t.Fatalf("page %d after torn-tail truncation: %v", n, err)
		}
	}
}

func TestDiskTornRollRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{})
	d.Put(pidN(1), pageData(1))
	d.Close()
	// A roll that crashed after creating the file but before the header
	// was durable: a short highest segment.
	if err := os.WriteFile(segmentPath(path, 2), []byte{0x60}, 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	if !d2.Has(pidN(1)) {
		t.Fatal("page lost across torn roll")
	}
	if err := d2.Put(pidN(2), pageData(2)); err != nil {
		t.Fatal(err)
	}
}

func TestDiskDuplicateConcurrentPuts(t *testing.T) {
	// Concurrent puts of the same id may both append a record; the store
	// must stay consistent and recovery must keep exactly one.
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{GroupCommit: true})
	data := pageData(42)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := d.Put(pidN(i), data); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pages, _ := d.Stats(); pages != 50 {
		t.Fatalf("pages = %d, want 50", pages)
	}
	d.Close()
	d2 := mustOpen(t, path, DiskOptions{})
	defer d2.Close()
	if pages, _ := d2.Stats(); pages != 50 {
		t.Fatalf("pages after reopen = %d, want 50", pages)
	}
	for i := 0; i < 50; i++ {
		got, err := d2.Get(pidN(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("page %d: %v", i, err)
		}
	}
}

func TestDiskSegmentFileNamesAreStable(t *testing.T) {
	// The on-disk names are part of the operational contract documented
	// in the README; a rename would orphan existing deployments.
	path := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, path, DiskOptions{})
	d.Put(pidN(1), pageData(1))
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	for _, name := range []string{path + ".000001", path + ".snapshot"} {
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("expected %s: %v", filepath.Base(name), err)
		}
	}
}

func TestDiskManySegmentsReopenStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	opts := DiskOptions{SegmentBytes: 2048}
	d := mustOpen(t, path, opts)
	const n = 300
	for i := 0; i < n; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	st := d2.RecoveryStats()
	if !st.SnapshotLoaded || st.RecordsReplayed != 0 {
		t.Fatalf("stats after snapshot-covered reopen: %+v", st)
	}
	if st.SegmentsOnDisk < 5 {
		t.Fatalf("segments on disk = %d, want many", st.SegmentsOnDisk)
	}
	if pages, _ := d2.Stats(); pages != n {
		t.Fatalf("pages = %d, want %d", pages, n)
	}
}
