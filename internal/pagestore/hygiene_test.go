package pagestore

import (
	"bytes"
	"os"
	"testing"

	"blobseer/internal/wire"
)

// countRecordKinds scans every segment file on disk and tallies put and
// tombstone records — the ground truth the hygiene assertions run on.
func countRecordKinds(t *testing.T, base string) (puts, tombs int) {
	t.Helper()
	idxs, err := listSegments(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range idxs {
		path := segmentPath(base, idx)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := segFmt.ReadHeader(f, path); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if _, err := scanSegment(f, path, false, func(sr scannedRecord) error {
			switch sr.rec.kind {
			case recPut:
				puts++
			case recTomb:
				tombs++
			}
			return nil
		}); err != nil {
			f.Close()
			t.Fatal(err)
		}
		f.Close()
	}
	return puts, tombs
}

// roll seals the active segment so the records just written are eligible
// for compaction (the active segment never is).
func (d *Disk) rollForTest(t *testing.T) {
	t.Helper()
	d.wmu.Lock()
	err := d.rollLocked()
	d.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompactionConvergesChurnedLogToLiveSet pins the generational
// tombstone-hygiene cascade: after heavy churn, one full compaction pass
// converges the log to exactly its live set — every dead put gone, and
// every tombstone too, because once the puts it suppressed are dropped
// from earlier segments nothing is left to resurrect its key. Without
// the cascade, tombstones of long-dead pages ride along forever.
func TestCompactionConvergesChurnedLogToLiveSet(t *testing.T) {
	path := t.TempDir() + "/pages.log"
	d := mustOpen(t, path, DiskOptions{SegmentBytes: 512})
	const n = 120
	live := make(map[int][]byte)
	for i := 0; i < n; i++ {
		data := pageData(i)
		if err := d.Put(pidN(i), data); err != nil {
			t.Fatal(err)
		}
		live[i] = data
	}
	for i := 0; i < n; i++ {
		if i%6 != 0 {
			if err := d.Delete(pidN(i)); err != nil {
				t.Fatal(err)
			}
			delete(live, i)
		}
	}
	d.rollForTest(t) // seal the tombstone tail; the active segment is never compacted

	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() == 0 {
		t.Fatal("churned log compacted nothing")
	}
	puts, tombs := countRecordKinds(t, path)
	if tombs != 0 {
		t.Fatalf("%d tombstones survive a full compaction of a churned log; hygiene did not converge", tombs)
	}
	if puts != len(live) {
		t.Fatalf("%d put records on disk, want exactly the %d live pages", puts, len(live))
	}

	// Converged does not mean lossy: live pages byte-identical, deleted
	// pages dead, across the rewrite and a restart.
	check := func(s *Disk) {
		t.Helper()
		for i := 0; i < n; i++ {
			if data, ok := live[i]; ok {
				got, err := s.Get(pidN(i), 0, wire.WholePage)
				if err != nil || !bytes.Equal(got, data) {
					t.Fatalf("live page %d: %v", i, err)
				}
			} else if s.Has(pidN(i)) {
				t.Fatalf("deleted page %d resurrected", i)
			}
		}
	}
	check(d)
	d.Close()
	d2 := mustOpen(t, path, DiskOptions{SegmentBytes: 512})
	defer d2.Close()
	check(d2)
}

// TestSnapshotSeededReopenNoSpuriousRewrite pins the headline fix: v2
// index snapshots persist per-segment tombstone bytes, so a
// snapshot-seeded recovery sees the same reclaim estimates the store had
// before the restart. The fixture builds the exact shape the old v1
// undercount mis-judged — a sealed tombstone-heavy segment (live ratio
// under CompactRatio) with nothing actually reclaimable — and asserts a
// post-reopen compaction stays a no-op instead of pointlessly rewriting
// the segment to byte-identical contents.
func TestSnapshotSeededReopenNoSpuriousRewrite(t *testing.T) {
	path := t.TempDir() + "/pages.log"
	opts := DiskOptions{SegmentBytes: 1 << 20, CompactRatio: 0.25}
	d := mustOpen(t, path, opts)

	// Segment 1: one big live page plus ten small soon-dead ones. The big
	// page keeps the live ratio above CompactRatio, so the dead puts stay
	// (the ratio gate protects mostly-live segments from rewrite churn) —
	// which in turn keeps the tombstones in segment 2 load-bearing.
	big := bytes.Repeat([]byte{0xAB}, 400)
	if err := d.Put(pidN(1000), big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.Put(pidN(i), bytes.Repeat([]byte{byte(i)}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	d.rollForTest(t)
	// Segment 2: the ten tombstones plus one small live put — tombstone
	// bytes dominate, live ratio far below CompactRatio.
	for i := 0; i < 10; i++ {
		if err := d.Delete(pidN(i)); err != nil {
			t.Fatal(err)
		}
	}
	small := bytes.Repeat([]byte{0xCD}, 20)
	if err := d.Put(pidN(1001), small); err != nil {
		t.Fatal(err)
	}
	d.rollForTest(t)

	// Steady state: nothing is reclaimable at this ratio.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if c := d.Compactions(); c != 0 {
		t.Fatalf("fixture not steady before snapshot: %d rewrites", c)
	}
	// The fixture really has the shape the bug needs: a sealed segment
	// whose tombstone bytes put its reclaim at zero while its live ratio
	// is below the threshold.
	d.segMu.RLock()
	shaped := false
	for _, seg := range d.segs {
		payload := seg.size.Load() - segHeaderSize
		tomb := seg.tombBytes.Load()
		liveB := seg.liveBytes.Load()
		if tomb > 0 && payload > 0 && payload-liveB-tomb <= 0 &&
			float64(liveB)/float64(payload) < opts.CompactRatio {
			shaped = true
		}
	}
	d.segMu.RUnlock()
	if !shaped {
		t.Fatal("fixture built no tombstone-heavy zero-reclaim segment; the test would pass vacuously")
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	_, tombsBefore := countRecordKinds(t, path)
	if tombsBefore == 0 {
		t.Fatal("no tombstones on disk at close; the test would pass vacuously")
	}
	d.Close()

	d2 := mustOpen(t, path, opts)
	defer d2.Close()
	if !d2.RecoveryStats().SnapshotLoaded {
		t.Fatalf("snapshot not loaded: %+v", d2.RecoveryStats())
	}
	if err := d2.Compact(); err != nil {
		t.Fatal(err)
	}
	if c := d2.Compactions(); c != 0 {
		t.Fatalf("snapshot-seeded reopen triggered %d spurious rewrites of the tombstone-heavy segment", c)
	}
	if _, tombsAfter := countRecordKinds(t, path); tombsAfter != tombsBefore {
		t.Fatalf("tombstones on disk changed %d -> %d across a no-op compaction", tombsBefore, tombsAfter)
	}
	// The tombstones are still doing their job.
	for i := 0; i < 10; i++ {
		if d2.Has(pidN(i)) {
			t.Fatalf("deleted page %d resurrected after seeded reopen", i)
		}
	}
	got, err := d2.Get(pidN(1000), 0, wire.WholePage)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big live page after reopen: %v", err)
	}
}
