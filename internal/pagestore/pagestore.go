// Package pagestore implements the storage engines behind a data
// provider. A page is an immutable blob of bytes identified by a globally
// unique PageID; BlobSeer never overwrites a page in place (§3 of the
// paper), which keeps the engine interface small: put, ranged get, has.
//
// Two engines are provided: Mem, a sharded in-memory store matching the
// paper's RAM-resident prototype, and Disk, a CRC-checked append-only log
// with crash recovery for durable deployments (an extension beyond the
// paper).
package pagestore

import (
	"errors"
	"fmt"
	"sync"

	"blobseer/internal/wire"
)

// ErrNotFound is returned by Get when the page is unknown.
var ErrNotFound = errors.New("pagestore: page not found")

// ErrBadRange is returned by Get when the requested byte range does not
// fit inside the page.
var ErrBadRange = errors.New("pagestore: byte range outside page")

// Store is a page storage engine. Implementations are safe for concurrent
// use. Pages are immutable: a second Put of the same id is a no-op (the
// contents are guaranteed identical because ids are globally unique and
// chosen by the creator of the bytes).
type Store interface {
	// Put stores data under id. It copies data.
	Put(id wire.PageID, data []byte) error
	// Get returns length bytes starting at off within page id. A length
	// of wire.WholePage returns everything from off to the end. The
	// returned slice must not be modified by the caller.
	Get(id wire.PageID, off, length uint32) ([]byte, error)
	// Has reports whether the page exists.
	Has(id wire.PageID) bool
	// Delete removes the page, making its bytes reclaimable. Deleting
	// an unknown page is a no-op. Deletion is final: ids are globally
	// unique and never reused, and the caller — a garbage collector
	// walking version metadata — must have proven the page unreachable
	// from every retained version before calling.
	Delete(id wire.PageID) error
	// Stats returns the number of stored pages and their total byte size.
	Stats() (pages, bytes uint64)
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// slicePage extracts the [off, off+length) range from a stored page,
// handling the WholePage sentinel and bounds checks. Shared by engines.
func slicePage(data []byte, off, length uint32) ([]byte, error) {
	if uint64(off) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: offset %d beyond page of %d bytes", ErrBadRange, off, len(data))
	}
	if length == wire.WholePage {
		return data[off:], nil
	}
	if uint64(off)+uint64(length) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: [%d,+%d) beyond page of %d bytes", ErrBadRange, off, length, len(data))
	}
	return data[off : off+length], nil
}

// memShards spreads page lookups over independent locks so concurrent
// clients (the paper's central scenario) do not serialize on one mutex.
const memShards = 64

// Mem is the in-memory Store. Construct with NewMem.
type Mem struct {
	shards [memShards]memShard
}

type memShard struct {
	mu    sync.RWMutex
	pages map[wire.PageID][]byte
	bytes uint64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	m := &Mem{}
	for i := range m.shards {
		m.shards[i].pages = make(map[wire.PageID][]byte)
	}
	return m
}

func (m *Mem) shard(id wire.PageID) *memShard {
	// The low id bytes are a counter; the first bytes are random. Mix a
	// few for an even spread.
	return &m.shards[(uint(id[0])^uint(id[8])^uint(id[15]))%memShards]
}

// Put implements Store.
func (m *Mem) Put(id wire.PageID, data []byte) error {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pages[id]; dup {
		return nil // immutable pages: idempotent
	}
	s.pages[id] = append([]byte(nil), data...)
	s.bytes += uint64(len(data))
	return nil
}

// Get implements Store.
func (m *Mem) Get(id wire.PageID, off, length uint32) ([]byte, error) {
	s := m.shard(id)
	s.mu.RLock()
	data, ok := s.pages[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	return slicePage(data, off, length)
}

// Has implements Store.
func (m *Mem) Has(id wire.PageID) bool {
	s := m.shard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.pages[id]
	return ok
}

// Delete implements Store.
func (m *Mem) Delete(id wire.PageID) error {
	s := m.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if data, ok := s.pages[id]; ok {
		s.bytes -= uint64(len(data))
		delete(s.pages, id)
	}
	return nil
}

// Stats implements Store.
func (m *Mem) Stats() (pages, bytes uint64) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		pages += uint64(len(s.pages))
		bytes += s.bytes
		s.mu.RUnlock()
	}
	return pages, bytes
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
