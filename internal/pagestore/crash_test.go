package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"blobseer/internal/wire"
)

// errInjected is the simulated crash: the maintenance pass aborts
// exactly as a process death at that point would, and the test then
// restarts on whatever the disk holds.
var errInjected = errors.New("injected crash")

// crashOpts uses segments small enough that the workload spans many of
// them, so compaction has real victims to crash on.
func crashOpts() DiskOptions {
	return DiskOptions{Sync: true, SegmentBytes: 256}
}

// crashWorkload drives a deterministic history with everything the
// snapshotter and compactor must preserve: pages spread over many
// segments, deletions before the snapshot (reclaimable, reflected in
// the snapshot), a snapshot, and deletions after it (tombstones only in
// the tail). Returns the expected surviving pages; every other worked
// id must stay deleted.
func crashWorkload(t *testing.T, d *Disk) map[int][]byte {
	t.Helper()
	const n = 24
	for i := 0; i < n; i++ {
		if err := d.Put(pidN(i), pageData(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%3 == 1 {
			if err := d.Delete(pidN(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			if err := d.Delete(pidN(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	live := make(map[int][]byte)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			live[i] = pageData(i)
		}
	}
	return live
}

// verifyPages asserts the store holds exactly the live pages
// byte-identically and none of the deleted ones.
func verifyPages(t *testing.T, d *Disk, live map[int][]byte) {
	t.Helper()
	const n = 24
	for i := 0; i < n; i++ {
		if data, ok := live[i]; ok {
			got, err := d.Get(pidN(i), 0, wire.WholePage)
			if err != nil {
				t.Fatalf("live page %d: %v", i, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("live page %d not byte-identical after recovery", i)
			}
		} else if d.Has(pidN(i)) {
			t.Fatalf("deleted page %d resurrected", i)
		}
	}
	if pages, _ := d.Stats(); pages != uint64(len(live)) {
		t.Fatalf("pages = %d, want %d", pages, len(live))
	}
}

// TestMaintenanceCrashInjection kills the snapshotter and the compactor
// at every fault point — plus torn-file variants a hook cannot
// express — and asserts the recovered pages are byte-identical to an
// uncrashed store's.
func TestMaintenanceCrashInjection(t *testing.T) {
	// The control must survive a clean restart unchanged, or the
	// comparisons below prove nothing.
	controlDir := t.TempDir()
	control := mustOpen(t, filepath.Join(controlDir, "pages.log"), crashOpts())
	want := crashWorkload(t, control)
	verifyPages(t, control, want)
	control.Close()
	control2 := mustOpen(t, filepath.Join(controlDir, "pages.log"), crashOpts())
	verifyPages(t, control2, want)
	control2.Close()

	// op is what the hook crashes: a snapshot or a compaction pass.
	type tamper func(t *testing.T, base string)
	cases := []struct {
		name   string
		op     string // "snapshot" or "compact"
		point  string // "" = no hook crash, tamper only
		tamper tamper
	}{
		{name: "snap-begin", op: "snapshot", point: crashSnapBegin},
		{name: "snap-captured", op: "snapshot", point: crashSnapCaptured},
		{name: "snap-tmp-written", op: "snapshot", point: crashSnapTmpWritten},
		{name: "snap-renamed", op: "snapshot", point: crashSnapRenamed},
		{name: "compact-tmp-written", op: "compact", point: crashCompactTmpWritten},
		{name: "compact-renamed", op: "compact", point: crashCompactRenamed},
		{name: "compact-applied", op: "compact", point: crashCompactApplied},
		{name: "torn-snapshot-tmp", op: "snapshot", point: crashSnapTmpWritten, tamper: func(t *testing.T, base string) {
			truncateTail(t, snapshotTmpPath(base), 7)
		}},
		{name: "torn-snapshot", op: "snapshot", point: crashSnapRenamed, tamper: func(t *testing.T, base string) {
			truncateTail(t, snapshotPath(base), 7)
		}},
		{name: "corrupt-snapshot-crc", op: "snapshot", point: crashSnapRenamed, tamper: func(t *testing.T, base string) {
			flipByte(t, snapshotPath(base), recHeaderSize+3)
		}},
		{name: "torn-compact-tmp", op: "compact", point: crashCompactTmpWritten, tamper: func(t *testing.T, base string) {
			truncateTail(t, compactTmpPath(base), 5)
		}},
		{name: "torn-segment-tail", op: "", tamper: func(t *testing.T, base string) {
			// A crash mid-append of a record that never applied: a valid
			// frame header claiming more payload than follows.
			var hdr [recHeaderSize]byte
			binary.LittleEndian.PutUint32(hdr[0:4], recMagic)
			binary.LittleEndian.PutUint32(hdr[4:8], 64)
			binary.LittleEndian.PutUint32(hdr[8:12], 0xBAD)
			appendBytes(t, newestSegmentFile(t, base), hdr[:])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "pages.log")
			d := mustOpen(t, base, crashOpts())
			want := crashWorkload(t, d)
			if tc.point != "" {
				fired := false
				d.crashHook = func(p string) error {
					if p == tc.point {
						fired = true
						return errInjected
					}
					return nil
				}
				var err error
				switch tc.op {
				case "snapshot":
					err = d.Snapshot()
				case "compact":
					err = d.Compact()
				}
				if !errors.Is(err, errInjected) {
					t.Fatalf("%s survived the injected crash: %v", tc.op, err)
				}
				if !fired {
					t.Fatalf("fault point %q never reached", tc.point)
				}
			}
			d.Close() // process death: nothing else runs
			if tc.tamper != nil {
				tc.tamper(t, base)
			}
			d2 := mustOpen(t, base, crashOpts())
			defer d2.Close()
			verifyPages(t, d2, want)
			// The recovered store still serves: new pages, deletes, and
			// another maintenance pass all work.
			if err := d2.Put(pidN(1000), pageData(1000)); err != nil {
				t.Fatal(err)
			}
			if got, err := d2.Get(pidN(1000), 0, wire.WholePage); err != nil || !bytes.Equal(got, pageData(1000)) {
				t.Fatalf("recovered store put/get: %v", err)
			}
			if err := d2.Delete(pidN(1000)); err != nil {
				t.Fatal(err)
			}
			if err := d2.Compact(); err != nil {
				t.Fatal(err)
			}
			verifyPages(t, d2, want)
		})
	}
}

// TestEveryMaintenanceCrashPointIsExercised keeps the fault-point table
// honest: a snapshot plus a compaction with work to do must pass
// through every declared point.
func TestEveryMaintenanceCrashPointIsExercised(t *testing.T) {
	d := mustOpen(t, filepath.Join(t.TempDir(), "pages.log"), crashOpts())
	defer d.Close()
	crashWorkload(t, d)
	seen := make(map[string]bool)
	d.crashHook = func(p string) error {
		seen[p] = true
		return nil
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, p := range crashPoints {
		if !seen[p] {
			t.Errorf("maintenance never reached fault point %q", p)
		}
	}
}

// TestCompactionCrashThenCompactAgain drives the generation-mismatch
// recovery path end to end: crash after the rewrite is live but before
// the covering snapshot, recover (stale rescan), then compact again.
func TestCompactionCrashThenCompactAgain(t *testing.T) {
	base := filepath.Join(t.TempDir(), "pages.log")
	d := mustOpen(t, base, crashOpts())
	want := crashWorkload(t, d)
	d.crashHook = func(p string) error {
		if p == crashCompactApplied {
			return errInjected
		}
		return nil
	}
	if err := d.Compact(); !errors.Is(err, errInjected) {
		t.Fatalf("compact survived: %v", err)
	}
	d.Close()

	d2 := mustOpen(t, base, crashOpts())
	if st := d2.RecoveryStats(); st.StaleRescanned == 0 {
		t.Fatalf("expected a stale (rewritten) segment rescan, got %+v", st)
	}
	verifyPages(t, d2, want)
	if err := d2.Compact(); err != nil {
		t.Fatal(err)
	}
	verifyPages(t, d2, want)
	d2.Close()

	d3 := mustOpen(t, base, crashOpts())
	defer d3.Close()
	verifyPages(t, d3, want)
}

func truncateTail(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendBytes(t *testing.T, path string, p []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func newestSegmentFile(t *testing.T, base string) string {
	t.Helper()
	segs, err := listSegments(base)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments at %s: %v", base, err)
	}
	return segmentPath(base, segs[len(segs)-1])
}
