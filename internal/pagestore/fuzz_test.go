package pagestore

import (
	"bytes"
	"testing"

	"blobseer/internal/seglog"
)

// The decoders face bytes from disk, where a crash or disk fault can
// produce anything. The fuzz targets pin two properties: they never
// panic on arbitrary input, and — because both encodings are
// canonical — a successful decode re-encodes to exactly the input.

func FuzzDecodeSegmentRecord(f *testing.F) {
	for _, r := range []segRecord{
		{kind: recPut, id: pidN(1), data: []byte("page body")},
		{kind: recPut, id: pidN(2)},
		{kind: recTomb, id: pidN(3)},
	} {
		f.Add(r.encode())
	}
	f.Add([]byte{})
	f.Add([]byte{99})
	f.Add([]byte{recTomb, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := decodeSegmentRecord(data)
		if err != nil {
			return
		}
		enc := r.encode()
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode(%x) = %+v re-encodes to %x", data, r, enc)
		}
		r2, err := decodeSegmentRecord(enc)
		if err != nil || r2.kind != r.kind || r2.id != r.id || !bytes.Equal(r2.data, r.data) {
			t.Fatalf("re-decode of %+v: %+v, %v", r, r2, err)
		}
	})
}

func FuzzDecodeIndexSnapshot(f *testing.F) {
	f.Add(encodeIndexSnapshot(&indexSnapshot{}))
	f.Add(encodeIndexSnapshot(&indexSnapshot{meta: seglog.IndexMeta{
		Segs: []seglog.SegMeta{{Gen: 1}, {Gen: 7}, {Gen: 3}},
	}}))
	rich := &indexSnapshot{
		meta: seglog.IndexMeta{Segs: []seglog.SegMeta{{Gen: 1}, {Gen: 2}, {Gen: 9}}},
		entries: []snapEntry{
			{id: pidN(1), indexEntry: indexEntry{seg: 1, off: 45, len: 100}},
			{id: pidN(2), indexEntry: indexEntry{seg: 3, off: 1 << 20, len: 0}},
			{id: pidN(3), indexEntry: indexEntry{seg: 2, off: 4096, len: 1 << 16}},
		},
	}
	f.Add(encodeIndexSnapshot(rich))
	// v2: the same snapshot with per-segment counters persisted. Both
	// formats must round-trip — decode preserves which one it read.
	richV2 := &indexSnapshot{
		meta: seglog.IndexMeta{HasMeta: true, Segs: []seglog.SegMeta{
			{Gen: 1, Live: 129, Tomb: 29},
			{Gen: 2},
			{Gen: 9, Live: 0, Tomb: 58},
		}},
		entries: rich.entries,
	}
	f.Add(encodeIndexSnapshot(richV2))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeIndexSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeIndexSnapshot(s), data) {
			t.Fatalf("snapshot decode of %d bytes re-encodes differently", len(data))
		}
		// Every decoded entry must be inside the covered segment range —
		// the invariant recovery relies on before touching files.
		for _, e := range s.entries {
			if e.seg == 0 || int(e.seg) > len(s.meta.Segs) {
				t.Fatalf("decoded entry in uncovered segment %d of %d", e.seg, len(s.meta.Segs))
			}
		}
	})
}
