package pagestore

import (
	"fmt"
	"os"
	"path/filepath"

	"blobseer/internal/wire"
)

// Maintenance turns the segmented page log from "rescan everything on
// open, grow forever" into a bounded store: the snapshotter serializes
// the page index at a segment boundary so reopen replays only the tail,
// and the compactor rewrites sealed segments whose live-byte ratio fell
// below the configured threshold, dropping records of Deleted pages and
// duplicate puts. Crash-consistency invariants, in order:
//
//  1. A snapshot capture is a consistent cut: every Put/Delete holds
//     stateMu shared from before its record is queued until after the
//     index applies, and the capture holds stateMu exclusively while it
//     rolls the active segment and clones the index — so the clone
//     equals exactly the replay of all segments below the cut.
//  2. Snapshots and compaction outputs become visible only by the
//     atomic rename of a fully written (and, for compaction, always
//     fsynced) tmp file: recovery never sees a half-written one.
//  3. A compaction rewrite bumps the segment's generation. The index
//     snapshot records the generation of every covered segment, so a
//     crash after the rename but before the follow-up snapshot is
//     detected on reopen (generation mismatch) and that segment alone
//     is rescanned instead of trusting stale offsets.
//  4. Tombstone records are preserved by rewrites, so even the
//     no-snapshot fallback (full rescan) can never resurrect a Deleted
//     page.
//
// The crash-injection tests drive a hook through every fault point
// below and assert the recovered pages are byte-identical to an
// uncrashed store's.

// Maintenance fault points, in execution order. Tests enumerate these.
const (
	crashSnapBegin      = "snap-begin"       // before anything happened
	crashSnapCaptured   = "snap-captured"    // index cloned, nothing on disk yet
	crashSnapTmpWritten = "snap-tmp-written" // tmp snapshot fully written (+synced)
	crashSnapRenamed    = "snap-renamed"     // snapshot live

	crashCompactTmpWritten = "compact-tmp-written" // rewrite tmp fully written+synced
	crashCompactRenamed    = "compact-renamed"     // rewrite live, index not yet updated
	crashCompactApplied    = "compact-applied"     // index updated, snapshot not yet rewritten
)

// crashPoints lists every fault point in order, for tests that want to
// enumerate them exhaustively.
var crashPoints = []string{
	crashSnapBegin, crashSnapCaptured, crashSnapTmpWritten, crashSnapRenamed,
	crashCompactTmpWritten, crashCompactRenamed, crashCompactApplied,
}

// crash fires the test-only fault-injection hook; a non-nil return
// aborts the maintenance pass exactly as a process death at that point
// would — nothing needs unwinding, recovery handles every prefix.
func (d *Disk) crash(point string) error {
	if d.crashHook == nil {
		return nil
	}
	return d.crashHook(point)
}

// nudgeMaintain wakes the background maintainer (no-op when none runs).
func (d *Disk) nudgeMaintain() {
	if d.maintC == nil {
		return
	}
	select {
	case d.maintC <- struct{}{}:
	default: // a nudge is already pending
	}
}

// maintainLoop runs automatic snapshots and compaction. It is a plain
// goroutine: maintenance is disk work with no simulated-time component.
// Errors are not fatal — the log simply keeps growing until the next
// trigger succeeds.
//
//blobseer:seglog maintain-loop
func (d *Disk) maintainLoop() {
	for {
		select {
		case <-d.quitC:
			return
		case <-d.maintC:
			if d.closed.Load() {
				return
			}
			if n := d.opts.SnapshotEvery; n > 0 && d.maintEvents.Load() >= uint64(n) {
				d.Snapshot()
			}
			if d.opts.CompactRatio > 0 {
				d.Compact()
			}
		}
	}
}

// Snapshot serializes the page index into an atomically renamed
// snapshot file, so the next reopen replays only records logged after
// this call. It is safe to call concurrently with traffic (the
// stop-the-world portion is only a segment roll plus an index clone)
// and serialized against compaction.
func (d *Disk) Snapshot() error {
	d.maintMu.Lock()
	defer d.maintMu.Unlock()
	return d.snapshotLocked()
}

//blobseer:seglog snapshot-write
func (d *Disk) snapshotLocked() error {
	if d.closed.Load() {
		return errStoreClosed
	}
	if err := d.crash(crashSnapBegin); err != nil {
		return err
	}
	snap, err := d.capture()
	if err != nil {
		return err
	}
	if err := d.crash(crashSnapCaptured); err != nil {
		return err
	}
	if err := writeSnapshotFile(d.base, encodeIndexSnapshot(snap), d.opts.Sync); err != nil {
		return err
	}
	if err := d.crash(crashSnapTmpWritten); err != nil {
		return err
	}
	if err := os.Rename(snapshotTmpPath(d.base), snapshotPath(d.base)); err != nil {
		return fmt.Errorf("pagestore: activate snapshot: %w", err)
	}
	if d.opts.Sync {
		if err := syncDir(filepath.Dir(d.base)); err != nil {
			return fmt.Errorf("pagestore: sync snapshot dir: %w", err)
		}
	}
	if err := d.crash(crashSnapRenamed); err != nil {
		return err
	}
	d.snapRuns.Add(1)
	return nil
}

// capture rolls the log to a fresh segment and clones the index. It
// holds stateMu exclusively, which excludes every mutator (they hold
// stateMu shared across record-append and index apply) — so no commit
// is in flight during the roll and the clone is exactly the state the
// segments below the cut replay to.
//
//blobseer:seglog capture
func (d *Disk) capture() (*indexSnapshot, error) {
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	d.wmu.Lock()
	if d.closed.Load() {
		d.wmu.Unlock()
		return nil, errStoreClosed
	}
	if d.active.size.Load() > segHeaderSize {
		if err := d.rollLocked(); err != nil {
			d.wmu.Unlock()
			return nil, err
		}
	}
	covered := d.active.idx - 1
	d.wmu.Unlock()

	snap := &indexSnapshot{gens: make([]uint64, covered)}
	d.segMu.RLock()
	for i := uint32(1); i <= covered; i++ {
		snap.gens[i-1] = d.segs[i].gen
	}
	d.segMu.RUnlock()
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.RLock()
		for id, e := range st.pages {
			if e.seg > covered {
				continue // cannot happen (mutators are excluded); defensive
			}
			snap.entries = append(snap.entries, snapEntry{id: id, indexEntry: e})
		}
		st.mu.RUnlock()
	}
	// Records up to the cut are covered; restart the auto-snapshot
	// countdown. Exact because no append can race this store.
	d.maintEvents.Store(0)
	return snap, nil
}

// Snapshots reports how many index snapshots completed since open.
func (d *Disk) Snapshots() uint64 { return d.snapRuns.Load() }

// Compactions reports how many segment rewrites completed since open.
func (d *Disk) Compactions() uint64 { return d.compactRuns.Load() }

// Compact rewrites every sealed segment whose live-byte ratio is below
// CompactRatio (or, when CompactRatio is zero, below 1 — on-demand
// compaction reclaims whatever it can), then writes a fresh index
// snapshot so the rewrites are covered. Pages still indexed — every
// page not explicitly Deleted, i.e. every page still reachable from a
// retained version — are preserved byte-identically; only records of
// Deleted pages and duplicate puts are dropped.
func (d *Disk) Compact() error {
	d.maintMu.Lock()
	defer d.maintMu.Unlock()
	return d.compactLocked()
}

//blobseer:seglog compact
func (d *Disk) compactLocked() error {
	if d.closed.Load() {
		return errStoreClosed
	}
	ratio := d.opts.CompactRatio
	if ratio <= 0 {
		ratio = 1
	}
	rewrote := 0
	for {
		victim := d.pickVictim(ratio)
		if victim == nil {
			break
		}
		if err := d.rewriteSegment(victim); err != nil {
			return err
		}
		rewrote++
	}
	if rewrote > 0 {
		// Cover the rewrites so reopen trusts the new offsets instead of
		// taking the generation-mismatch rescan path.
		return d.snapshotLocked()
	}
	return nil
}

// pickVictim returns the sealed segment with the most reclaimable bytes
// among those whose live ratio is below the threshold, or nil. A
// freshly rewritten segment estimates zero reclaimable bytes, so
// compaction always terminates.
//
//blobseer:seglog pick-victim
func (d *Disk) pickVictim(ratio float64) *segment {
	d.wmu.Lock()
	activeIdx := d.active.idx
	d.wmu.Unlock()
	d.segMu.RLock()
	defer d.segMu.RUnlock()
	var best *segment
	var bestReclaim int64
	for _, seg := range d.segs {
		if seg.idx >= activeIdx {
			continue // never the active segment
		}
		payload := seg.size.Load() - segHeaderSize
		if payload <= 0 {
			continue
		}
		live := seg.liveBytes.Load()
		reclaim := payload - live - seg.tombBytes.Load()
		if reclaim <= 0 || float64(live)/float64(payload) >= ratio {
			continue
		}
		if reclaim > bestReclaim {
			best, bestReclaim = seg, reclaim
		}
	}
	return best
}

// keptRecord is one record surviving a rewrite, with its offsets in the
// old and new files.
type keptRecord struct {
	frame  []byte
	put    bool
	id     wire.PageID
	oldOff int64 // old body offset (puts; index match key)
	newOff int64 // new body offset
	length uint32
}

// rewriteSegment compacts one sealed segment in place: the records
// still live — puts the index points at, and every tombstone — are
// written to a tmp file under a fresh generation, fsynced (always, even
// in non-Sync stores: a rewrite replaces previously durable data, so it
// must itself be durable before the rename), renamed over the segment,
// and the index entries are retargeted to the new offsets under the
// segment lock. Readers mid-pread keep the old file handle and stay
// correct; the old inode lives until their locks release.
//
//blobseer:seglog rewrite-segment
func (d *Disk) rewriteSegment(victim *segment) error {
	path := segmentPath(d.base, victim.idx)
	var kept []keptRecord
	if _, err := scanSegment(victim.f, path, false, func(sr scannedRecord) error {
		switch sr.rec.kind {
		case recTomb:
			kept = append(kept, keptRecord{
				frame: frameRecord(sr.rec.encode()),
				id:    sr.rec.id,
			})
		case recPut:
			st := d.stripe(sr.rec.id)
			st.mu.RLock()
			e, ok := st.pages[sr.rec.id]
			st.mu.RUnlock()
			// Keep only the record the index points at: duplicates and
			// Deleted pages are dropped. A concurrent Delete between
			// this check and the apply below is re-checked there.
			if ok && e.seg == victim.idx && e.off == sr.dataOff {
				kept = append(kept, keptRecord{
					frame:  frameRecord(sr.rec.encode()),
					put:    true,
					id:     sr.rec.id,
					oldOff: sr.dataOff,
					length: sr.dataLen,
				})
			}
		}
		return nil
	}); err != nil {
		return err
	}

	newGen := d.nextGen.Add(1)
	tmp := compactTmpPath(d.base)
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: create compaction tmp: %w", err)
	}
	if err := writeSegmentHeader(f, newGen); err != nil {
		f.Close()
		return err
	}
	var off int64 = segHeaderSize
	var flushed int64 = segHeaderSize
	var tombBytes int64
	buf := make([]byte, 0, 1<<16)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := f.WriteAt(buf, flushed); err != nil {
			return fmt.Errorf("pagestore: write compaction tmp: %w", err)
		}
		flushed += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for i := range kept {
		k := &kept[i]
		k.newOff = off + recHeaderSize + recPayloadMin
		buf = append(buf, k.frame...)
		off += int64(len(k.frame))
		if !k.put {
			tombBytes += framedRecBytes
		}
		if len(buf) >= 1<<20 {
			if err := flush(); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("pagestore: sync compaction tmp: %w", err)
	}
	if err := d.crash(crashCompactTmpWritten); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return fmt.Errorf("pagestore: activate compacted segment: %w", err)
	}
	if err := syncDir(filepath.Dir(d.base)); err != nil {
		f.Close()
		return fmt.Errorf("pagestore: sync dir after compaction: %w", err)
	}
	if err := d.crash(crashCompactRenamed); err != nil {
		f.Close()
		return err
	}

	// Swap the handle and retarget the index as one unit under the
	// segment lock; Get re-fetches entries under it (see disk.go).
	victim.mu.Lock()
	old := victim.f
	victim.f = f
	victim.gen = newGen
	victim.size.Store(off)
	var live int64
	for i := range kept {
		k := &kept[i]
		if !k.put {
			continue
		}
		st := d.stripe(k.id)
		st.mu.Lock()
		if e, ok := st.pages[k.id]; ok && e.seg == victim.idx && e.off == k.oldOff {
			e.off = k.newOff
			st.pages[k.id] = e
			live += framedRecBytes + int64(k.length)
		}
		st.mu.Unlock()
	}
	victim.liveBytes.Store(live)
	victim.tombBytes.Store(tombBytes)
	victim.mu.Unlock()
	old.Close()
	d.compactRuns.Add(1)
	return d.crash(crashCompactApplied)
}
