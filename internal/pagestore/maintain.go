package pagestore

import (
	"errors"
	"fmt"
	"time"

	"blobseer/internal/seglog"
	"blobseer/internal/wire"
)

// Maintenance turns the segmented page log from "rescan everything on
// open, grow forever" into a bounded store: the snapshotter serializes
// the page index at a segment boundary so reopen replays only the tail,
// and the compactor rewrites sealed segments whose live-byte ratio fell
// below the configured threshold, dropping records of Deleted pages and
// duplicate puts. Crash-consistency invariants, in order:
//
//  1. A snapshot capture is a consistent cut: the exclusive committer
//     holds stateMu shared across commit+apply (seglog.Committer.Outer),
//     and the capture holds stateMu exclusively while it rolls the
//     active segment and resolves the dirty pages — so no record is
//     split from its index change, records queued behind the capture
//     land in the post-roll segment, and the captured index equals
//     exactly the replay of all segments below the cut. The capture is
//     incremental once a baseline snapshot published: only pages marked
//     since then are re-resolved (seglog.Tracker), so the
//     stop-the-world pause stops scaling with total page count.
//  2. Snapshots and compaction outputs become visible only by the
//     atomic rename of a fully written (and, for compaction, always
//     fsynced) tmp file: recovery never sees a half-written one.
//  3. A compaction rewrite bumps the segment's generation. The index
//     snapshot records the generation of every covered segment, so a
//     crash after the rename but before the follow-up snapshot is
//     detected on reopen (generation mismatch) and that segment alone
//     is rescanned instead of trusting stale offsets.
//  4. Tombstone records are preserved by rewrites while some earlier
//     segment still holds a put for their key, so even the no-snapshot
//     fallback (full rescan) can never resurrect a Deleted page. Once
//     the last such put is gone the tombstone is dead weight and the
//     rewrite drops it (see internal/seglog/hygiene.go).
//
// The crash-injection tests drive a hook through every fault point
// below and assert the recovered pages are byte-identical to an
// uncrashed store's.

// Maintenance fault points, in execution order. Tests enumerate these.
const (
	crashSnapBegin      = "snap-begin"       // before anything happened
	crashSnapCaptured   = "snap-captured"    // index cloned, nothing on disk yet
	crashSnapTmpWritten = "snap-tmp-written" // tmp snapshot fully written (+synced)
	crashSnapRenamed    = "snap-renamed"     // snapshot live

	crashCompactTmpWritten = "compact-tmp-written" // rewrite tmp fully written+synced
	crashCompactRenamed    = "compact-renamed"     // rewrite live, index not yet updated
	crashCompactApplied    = "compact-applied"     // index updated, snapshot not yet rewritten
)

// crashPoints lists every fault point in order, for tests that want to
// enumerate them exhaustively.
var crashPoints = []string{
	crashSnapBegin, crashSnapCaptured, crashSnapTmpWritten, crashSnapRenamed,
	crashCompactTmpWritten, crashCompactRenamed, crashCompactApplied,
}

// crash fires the test-only fault-injection hook; a non-nil return
// aborts the maintenance pass exactly as a process death at that point
// would — nothing needs unwinding, recovery handles every prefix.
func (d *Disk) crash(point string) error {
	if d.crashHook == nil {
		return nil
	}
	return d.crashHook(point)
}

// nudgeMaintain wakes the background maintainer (no-op when none runs).
func (d *Disk) nudgeMaintain() { d.maint.Nudge() }

// maintainPass is one wake-up of the background maintainer.
func (d *Disk) maintainPass() bool {
	if d.closed.Load() {
		return false
	}
	if n := d.opts.SnapshotEvery; n > 0 && d.maintTrack.Events() >= uint64(n) {
		d.Snapshot()
	}
	if d.opts.CompactRatio > 0 {
		d.Compact()
	}
	return true
}

// Snapshot serializes the page index into an atomically renamed
// snapshot file, so the next reopen replays only records logged after
// this call. It is safe to call concurrently with traffic (the
// stop-the-world portion is only a segment roll plus an index clone)
// and serialized against compaction.
func (d *Disk) Snapshot() error {
	d.maintMu.Lock()
	defer d.maintMu.Unlock()
	return d.snapshotLocked()
}

func (d *Disk) snapshotLocked() error {
	if d.closed.Load() {
		return errStoreClosed
	}
	if err := d.crash(crashSnapBegin); err != nil {
		return err
	}
	snap, cut, err := d.capture()
	if err != nil {
		return err
	}
	if err := d.crash(crashSnapCaptured); err != nil {
		cut.Abort()
		return err
	}
	if err := segFmt.PublishSnapshot(d.base, encodeIndexSnapshot(snap), d.opts.Sync,
		func() error { return d.crash(crashSnapTmpWritten) },
		func() error { return d.crash(crashSnapRenamed) },
	); err != nil {
		// The countdown and dirty set survive (seglog.Capture.Abort), so
		// the next maintenance pass retries immediately instead of logging
		// another SnapshotEvery records uncovered.
		cut.Abort()
		return err
	}
	// Only now — the snapshot is live — consume the countdown and adopt
	// the merged entries as the next capture's baseline.
	cut.Commit()
	d.snapRuns.Add(1)
	return nil
}

// capture rolls the log to a fresh segment and captures the index at
// the cut — incrementally when a published baseline exists: only pages
// marked dirty since the last snapshot are re-resolved, so the
// stop-the-world pause is O(pages changed), not O(pages held). It holds
// stateMu exclusively, which excludes the exclusive committer (it holds
// stateMu shared across commit+apply) — so no commit is in flight
// during the roll and the capture is exactly the state the segments
// below the cut replay to. The per-segment counters read here are exact
// for the same reason, and compaction (the only other writer of gen and
// the counters) is excluded by maintMu. The returned cut must be
// Committed after a successful publish or Aborted on any error.
func (d *Disk) capture() (*indexSnapshot, *seglog.Capture[wire.PageID, indexEntry], error) {
	d.stateMu.Lock()
	t0 := time.Now()
	snap, cut, err := d.captureLocked()
	d.snapPause.Store(int64(time.Since(t0)))
	d.stateMu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	// The merge is O(total pages) of map work, but the stop-the-world
	// capture above was O(dirty pages): it runs after stateMu released.
	merged := cut.Merged()
	snap.entries = make([]snapEntry, 0, len(merged))
	for id, e := range merged {
		snap.entries = append(snap.entries, snapEntry{id: id, indexEntry: e})
	}
	return snap, cut, nil
}

func (d *Disk) captureLocked() (*indexSnapshot, *seglog.Capture[wire.PageID, indexEntry], error) {
	d.wmu.Lock()
	if d.closed.Load() {
		d.wmu.Unlock()
		return nil, nil, errStoreClosed
	}
	if d.active.size.Load() > segHeaderSize {
		if err := d.rollLocked(); err != nil {
			d.wmu.Unlock()
			return nil, nil, err
		}
	}
	covered := d.active.idx - 1
	d.wmu.Unlock()

	snap := &indexSnapshot{meta: seglog.IndexMeta{
		HasMeta: true,
		Segs:    make([]seglog.SegMeta, covered),
	}}
	d.segMu.RLock()
	for i := uint32(1); i <= covered; i++ {
		seg := d.segs[i]
		snap.meta.Segs[i-1] = seglog.SegMeta{
			Gen:  seg.gen,
			Live: seg.liveBytes.Load(),
			Tomb: seg.tombBytes.Load(),
		}
	}
	d.segMu.RUnlock()

	// An index entry above the cut would mean a record applied without
	// the committer holding the cut shared — state corruption. Publishing
	// a snapshot that silently omits it would cement the damage (the
	// entry's segment gets rescanned on reopen, but a later snapshot
	// covering it would not), so fail the capture loudly instead.
	uncovered := func(id wire.PageID, e indexEntry) error {
		return fmt.Errorf("pagestore: snapshot capture: page %v indexed in uncovered segment %d (cut at %d)",
			id, e.seg, covered)
	}
	cut := d.maintTrack.Begin()
	if cut.Full() {
		// First capture since open (or the fallback): seed from a full
		// index scan.
		seed := make(map[wire.PageID]indexEntry, d.pages.Load())
		for i := range d.stripes {
			st := &d.stripes[i]
			st.mu.RLock()
			for id, e := range st.pages {
				if e.seg > covered {
					st.mu.RUnlock()
					cut.Abort()
					return nil, nil, uncovered(id, e)
				}
				seed[id] = e
			}
			st.mu.RUnlock()
		}
		cut.Seed(seed)
	} else {
		for id := range cut.Dirty() {
			st := d.stripe(id)
			st.mu.RLock()
			e, ok := st.pages[id]
			st.mu.RUnlock()
			if ok && e.seg > covered {
				cut.Abort()
				return nil, nil, uncovered(id, e)
			}
			cut.Resolve(id, e, ok)
		}
	}
	return snap, cut, nil
}

// Snapshots reports how many index snapshots completed since open.
func (d *Disk) Snapshots() uint64 { return d.snapRuns.Load() }

// LastCapturePause reports the stop-the-world duration of the most
// recent snapshot capture (the window stateMu was held exclusively).
// With incremental capture this is O(pages changed since the last
// snapshot), not O(pages held) — the A7 ablation measures it.
func (d *Disk) LastCapturePause() time.Duration {
	return time.Duration(d.snapPause.Load())
}

// Compactions reports how many segment rewrites completed since open.
func (d *Disk) Compactions() uint64 { return d.compactRuns.Load() }

// Compact rewrites every sealed segment whose live-byte ratio is below
// CompactRatio (or, when CompactRatio is zero, below 1 — on-demand
// compaction reclaims whatever it can), then writes a fresh index
// snapshot so the rewrites are covered. Pages still indexed — every
// page not explicitly Deleted, i.e. every page still reachable from a
// retained version — are preserved byte-identically; only records of
// Deleted pages, duplicate puts, and tombstones with no earlier put
// left to suppress are dropped.
func (d *Disk) Compact() error {
	d.maintMu.Lock()
	defer d.maintMu.Unlock()
	return d.compactLocked()
}

func (d *Disk) compactLocked() error {
	if d.closed.Load() {
		return errStoreClosed
	}
	ratio := d.opts.CompactRatio
	if ratio <= 0 {
		ratio = 1
	}
	rewrote := 0
	for {
		victim := d.pickVictim(ratio)
		if victim == nil {
			break
		}
		if err := d.rewriteSegment(victim); err != nil {
			return err
		}
		rewrote++
	}
	if rewrote > 0 {
		// Cover the rewrites so reopen trusts the new offsets instead of
		// taking the generation-mismatch rescan path.
		return d.snapshotLocked()
	}
	return nil
}

// pickVictim returns the sealed segment with the most reclaimable bytes
// among those whose live ratio is below the threshold — or, when no
// bytes are reclaimable anywhere, the lowest hygiene-flagged segment
// (an earlier rewrite dropped a put, so tombstones there may now be
// droppable). A freshly rewritten segment estimates zero reclaimable
// bytes and carries no flag, so compaction always terminates.
func (d *Disk) pickVictim(ratio float64) *segment {
	d.wmu.Lock()
	activeIdx := d.active.idx
	d.wmu.Unlock()
	d.segMu.RLock()
	defer d.segMu.RUnlock()
	var best *segment
	var bestReclaim int64
	for _, seg := range d.segs {
		if seg.idx >= activeIdx {
			continue // never the active segment
		}
		payload := seg.size.Load() - segHeaderSize
		if payload <= 0 {
			continue
		}
		live := seg.liveBytes.Load()
		reclaim := payload - live - seg.tombBytes.Load()
		if reclaim <= 0 || float64(live)/float64(payload) >= ratio {
			continue
		}
		if reclaim > bestReclaim {
			best, bestReclaim = seg, reclaim
		}
	}
	if best != nil {
		return best
	}
	for _, seg := range d.segs {
		if seg.idx >= activeIdx || !seg.hygiene.Load() {
			continue
		}
		if seg.size.Load()-segHeaderSize <= 0 {
			seg.hygiene.Store(false)
			continue
		}
		if best == nil || seg.idx < best.idx {
			best = seg
		}
	}
	return best
}

// keptRecord is one record surviving a rewrite, with its offsets in the
// old and new files.
type keptRecord struct {
	frame  []byte
	put    bool
	id     wire.PageID
	oldOff int64 // old body offset (puts; index match key)
	newOff int64 // new body offset
	length uint32
}

// errHygieneDone stops the tombstone-hygiene sweep early once every
// tombstone in the victim is known to be needed.
var errHygieneDone = errors.New("pagestore: hygiene scan complete")

// neededTombs resolves the hygiene rule for one victim: which of its
// tombstones still have a put record in some earlier segment to
// suppress. Earlier segments are sealed and maintMu excludes any other
// rewrite, so their files are stable; the sweep reads only each
// record's kind+id prefix, never the page bodies.
func (d *Disk) neededTombs(victim *segment, tombs map[wire.PageID]bool) (map[wire.PageID]bool, error) {
	return seglog.FilterTombs(tombs, func(observe func(wire.PageID) bool) error {
		for idx := uint32(1); idx < victim.idx; idx++ {
			seg := d.segLive(idx)
			seg.mu.RLock()
			err := segFmt.ScanPrefix(seg.f, segmentPath(d.base, idx), recPayloadMin,
				func(prefix []byte, _ uint32) error {
					if len(prefix) < recPayloadMin || prefix[0] != recPut {
						return nil
					}
					var id wire.PageID
					copy(id[:], prefix[1:])
					if !observe(id) {
						return errHygieneDone
					}
					return nil
				})
			seg.mu.RUnlock()
			if errors.Is(err, errHygieneDone) {
				return nil
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// rewriteSegment compacts one sealed segment in place: the records
// still live — puts the index points at, and tombstones some earlier
// segment still holds a put for — are written to a tmp file under a
// fresh generation, fsynced, renamed over the segment (see
// seglog.SegmentWriter for why the fsync is unconditional), and the
// index entries are retargeted to the new offsets under the segment
// lock. Readers mid-pread keep the old file handle and stay correct;
// the old inode lives until their locks release.
func (d *Disk) rewriteSegment(victim *segment) error {
	path := segmentPath(d.base, victim.idx)
	var kept []keptRecord
	tombs := make(map[wire.PageID]bool)
	droppedPut := false
	if _, err := scanSegment(victim.f, path, false, func(sr scannedRecord) error {
		switch sr.rec.kind {
		case recTomb:
			tombs[sr.rec.id] = true
			kept = append(kept, keptRecord{
				frame: segFmt.Frame(sr.rec.encode()),
				id:    sr.rec.id,
			})
		case recPut:
			st := d.stripe(sr.rec.id)
			st.mu.RLock()
			e, ok := st.pages[sr.rec.id]
			st.mu.RUnlock()
			// Keep only the record the index points at: duplicates and
			// Deleted pages are dropped. A concurrent Delete between
			// this check and the apply below is re-checked there.
			if ok && e.seg == victim.idx && e.off == sr.dataOff {
				kept = append(kept, keptRecord{
					frame:  segFmt.Frame(sr.rec.encode()),
					put:    true,
					id:     sr.rec.id,
					oldOff: sr.dataOff,
					length: sr.dataLen,
				})
			} else {
				droppedPut = true
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if len(tombs) > 0 {
		needed, err := d.neededTombs(victim, tombs)
		if err != nil {
			return err
		}
		if len(needed) < len(tombs) {
			filtered := kept[:0]
			for _, k := range kept {
				if !k.put && !needed[k.id] {
					continue
				}
				filtered = append(filtered, k)
			}
			kept = filtered
		}
	}

	newGen := d.nextGen.Add(1)
	w, err := segFmt.NewSegmentWriter(compactTmpPath(d.base), newGen)
	if err != nil {
		return err
	}
	var tombBytes int64
	for i := range kept {
		k := &kept[i]
		start, err := w.Append(k.frame)
		if err != nil {
			w.Abort()
			return err
		}
		k.newOff = start + recHeaderSize + recPayloadMin
		if !k.put {
			tombBytes += framedRecBytes
		}
	}
	if err := w.Commit(path,
		func() error { return d.crash(crashCompactTmpWritten) },
		func() error { return d.crash(crashCompactRenamed) },
	); err != nil {
		return err
	}

	// Swap the handle and retarget the index as one unit under the
	// segment lock; Get re-fetches entries under it (see disk.go).
	victim.mu.Lock()
	old := victim.f
	victim.f = w.File()
	victim.gen = newGen
	victim.size.Store(w.Size())
	var live int64
	for i := range kept {
		k := &kept[i]
		if !k.put {
			continue
		}
		st := d.stripe(k.id)
		st.mu.Lock()
		if e, ok := st.pages[k.id]; ok && e.seg == victim.idx && e.off == k.oldOff {
			e.off = k.newOff
			st.pages[k.id] = e
			live += framedRecBytes + int64(k.length)
			// The entry moved: the next incremental snapshot must carry
			// the new offset, or its baseline would keep pointing at the
			// old one under a matching generation.
			d.maintTrack.Mark(k.id)
		}
		st.mu.Unlock()
	}
	victim.liveBytes.Store(live)
	victim.tombBytes.Store(tombBytes)
	victim.hygiene.Store(false)
	victim.mu.Unlock()
	old.Close()
	if droppedPut {
		// The dropped puts may have been the last reason tombstones in
		// later segments existed; flag them so this compaction pass
		// re-evaluates the rule there too. Flags are only ever set when a
		// record was actually dropped, so the cascade terminates.
		d.segMu.RLock()
		for _, seg := range d.segs {
			if seg.idx > victim.idx && seg.tombBytes.Load() > 0 {
				seg.hygiene.Store(true)
			}
		}
		d.segMu.RUnlock()
	}
	d.compactRuns.Add(1)
	return d.crash(crashCompactApplied)
}
