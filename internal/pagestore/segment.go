package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"blobseer/internal/seglog"
	"blobseer/internal/wire"
)

// The disk store's log is segmented: page records append to the active
// segment file (<base>.000001, <base>.000002, ...) and the committer
// rolls to a fresh segment once the active one exceeds the configured
// size. Sealed segments are immutable except for compaction, which
// rewrites a whole segment in place (tmp + fsync + atomic rename over
// the same name), so the set of segment indices on disk is always
// contiguous from 1 — unlike the version manager's WAL, old segments
// still hold live page bodies and are never deleted.
//
// The segment mechanics — generation-stamped headers, CRC record
// frames, torn-tail recovery, the publish sequences — live in
// internal/seglog, shared with the version WAL and the DHT metadata
// log. This file keeps only what is the page store's own: the record
// encoding and the per-segment accounting.
//
// Segment header (16 bytes, little-endian):
//
//	uint32 segMagic | uint32 segFormat | uint64 generation
//
// Record frame, shared with the other logs:
//
//	uint32 recMagic | uint32 payloadLen | uint32 crc32(payload) | payload
//
// and the payload is a segRecord encoding (see encode below): one kind
// byte, the 16-byte page id, and — for puts — the page body.

const (
	segMagic  = 0xB10B5E60
	segFormat = 1
	recMagic  = 0xB10B5EE5 // shared with the pre-segmentation log format

	segHeaderSize = seglog.HeaderSize
	recHeaderSize = seglog.FrameHeaderSize
	// recPayloadMin is kind + page id, the payload of a tombstone and the
	// prefix of every put.
	recPayloadMin = 1 + 16
)

// segFmt is the page store's seglog dialect.
var segFmt = &seglog.Format{
	Name:      "pagestore",
	RecMagic:  recMagic,
	SegMagic:  segMagic,
	SegFormat: segFormat,
	SnapMagic: psnapMagic,
}

// record kinds.
const (
	recPut  byte = 1
	recTomb byte = 2
)

// segRecord is one decoded log record: a stored page or a tombstone
// marking a page reclaimed by the garbage collector.
type segRecord struct {
	kind byte
	id   wire.PageID
	data []byte // recPut only
}

func (r *segRecord) encode() []byte {
	w := wire.NewWriter(recPayloadMin + len(r.data))
	w.Uint8(r.kind)
	w.Raw(r.id[:])
	if r.kind == recPut {
		w.Raw(r.data)
	}
	return w.Bytes()
}

// decodeSegmentRecord parses a record payload. It never panics on
// arbitrary bytes and the encoding is canonical — a successful decode
// re-encodes to exactly the input — which FuzzDecodeSegmentRecord pins.
func decodeSegmentRecord(data []byte) (segRecord, error) {
	r := wire.NewReader(data)
	var rec segRecord
	rec.kind = r.Uint8()
	copy(rec.id[:], r.Raw(16))
	switch rec.kind {
	case recPut:
		rec.data = r.Raw(r.Remaining())
	case recTomb:
		// No body; trailing bytes are a corrupt frame.
	default:
		if r.Err() == nil {
			return segRecord{}, fmt.Errorf("pagestore: unknown record kind %d", rec.kind)
		}
	}
	if err := r.Finish(); err != nil {
		return segRecord{}, fmt.Errorf("pagestore: decoding record: %w", err)
	}
	return rec, nil
}

// framedRecBytes is the framed size of a record with an empty body —
// exactly one tombstone, and the fixed overhead of every put. The
// live/tombstone byte accounting that drives compaction victim
// selection counts framed bytes with this one constant, so a fully
// rewritten segment estimates exactly zero reclaimable bytes.
const framedRecBytes = recHeaderSize + recPayloadMin

// segment is one log file and its in-memory accounting. The file handle
// is swapped by compaction under mu; readers hold mu.RLock across their
// pread so a swap never closes a file out from under them.
type segment struct {
	idx uint32

	mu  sync.RWMutex
	f   *os.File
	gen uint64
	// size is the file length. For the active segment it is advanced
	// only by the unique committer (see disk.go); for sealed segments it
	// changes only under mu (compaction). Atomic so stats and the
	// compactor can read it from anywhere.
	size atomic.Int64

	// liveBytes is the payload bytes of records the index still points
	// at; tombBytes is the framed bytes of tombstone records the last
	// rewrite preserved. size - segHeaderSize - liveBytes - tombBytes
	// estimates what a rewrite would reclaim. Both counters survive
	// reopen exactly: v2 index snapshots persist them per segment (see
	// internal/seglog/indexsnap.go), so a snapshot-seeded recovery no
	// longer undercounts tombstone bytes.
	liveBytes atomic.Int64
	tombBytes atomic.Int64

	// hygiene flags the segment for a tombstone-hygiene rewrite: an
	// earlier segment's rewrite dropped a dead put, so tombstones here
	// may have lost their last reason to exist (see
	// internal/seglog/hygiene.go). pickVictim selects flagged segments
	// even when their byte-reclaim estimate is zero; the rewrite clears
	// the flag.
	hygiene atomic.Bool
}

// segmentPath names segment idx of the store rooted at base.
func segmentPath(base string, idx uint32) string {
	return seglog.SegmentPath(base, uint64(idx))
}

// listSegments returns the segment indices present for base, ascending.
func listSegments(base string) ([]uint32, error) {
	idxs, err := segFmt.ListSegments(base)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, 0, len(idxs))
	for _, idx := range idxs {
		if idx > 1<<32-1 {
			continue // not a segment this store could have written
		}
		out = append(out, uint32(idx))
	}
	return out, nil
}

// scannedRecord is one record located by scanSegment: the decoded
// payload plus where its body sits in the file.
type scannedRecord struct {
	rec     segRecord
	dataOff int64 // file offset of the put body (payload start + kind + id)
	dataLen uint32
}

// scanSegment reads every record frame in one segment file, already
// open with a validated header. A torn frame at the tail is truncated
// away when allowTorn is set (the highest segment — a crash
// mid-append); anywhere else it fails the open. The file size after any
// truncation is returned.
func scanSegment(f *os.File, path string, allowTorn bool, visit func(scannedRecord) error) (int64, error) {
	return segFmt.Scan(f, path, allowTorn, func(payload []byte, payloadOff int64) error {
		rec, err := decodeSegmentRecord(payload)
		if err != nil {
			return fmt.Errorf("pagestore: %s at offset %d: %w", path, payloadOff-recHeaderSize, err)
		}
		return visit(scannedRecord{
			rec:     rec,
			dataOff: payloadOff + recPayloadMin,
			dataLen: uint32(len(payload)) - recPayloadMin,
		})
	})
}

// errStoreClosed is returned by operations racing Close.
var errStoreClosed = errors.New("pagestore: store closed")

// Legacy single-file log (pre-segmentation) support. The old format had
// no file header and framed records as
//
//	uint32 recMagic | uint32 dataLen | 16-byte PageID | uint32 crc32(data) | data
//
// A store opened on such a file migrates it once: the records are
// rewritten into segment 1 (tmp + fsync + rename, so a crash
// mid-migration leaves the legacy file untouched) and the legacy file
// is removed.
const legacyHeaderSize = 4 + 4 + 16 + 4

// migrateLegacy converts the single-file log at base into segment 1.
// Returns whether a migration happened.
func migrateLegacy(base string) (bool, error) {
	info, err := os.Stat(base)
	if err != nil || !info.Mode().IsRegular() {
		return false, nil // nothing to migrate
	}
	src, err := os.Open(base)
	if err != nil {
		return false, fmt.Errorf("pagestore: open legacy log: %w", err)
	}
	defer src.Close()

	dst, err := segFmt.NewSegmentWriter(seglog.MigrateTmpPath(base), 1)
	if err != nil {
		return false, err
	}
	logLen := info.Size()
	var off int64
	var hdr [legacyHeaderSize]byte
	for off < logLen {
		if logLen-off < legacyHeaderSize {
			break // torn header: the legacy format truncated these too
		}
		if _, err := src.ReadAt(hdr[:], off); err != nil {
			dst.Abort()
			return false, fmt.Errorf("pagestore: read legacy header at %d: %w", off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			dst.Abort()
			return false, fmt.Errorf("pagestore: bad magic at offset %d: legacy log corrupted", off)
		}
		dataLen := binary.LittleEndian.Uint32(hdr[4:8])
		var id wire.PageID
		copy(id[:], hdr[8:24])
		wantCRC := binary.LittleEndian.Uint32(hdr[24:28])
		dataOff := off + legacyHeaderSize
		if dataOff+int64(dataLen) > logLen {
			break // torn payload
		}
		data := make([]byte, dataLen)
		if _, err := src.ReadAt(data, dataOff); err != nil {
			dst.Abort()
			return false, fmt.Errorf("pagestore: read legacy payload at %d: %w", dataOff, err)
		}
		if crc32.ChecksumIEEE(data) != wantCRC {
			dst.Abort()
			return false, fmt.Errorf("pagestore: crc mismatch for page %v at offset %d: legacy log corrupted", id, off)
		}
		if _, err := dst.Append(segFmt.Frame((&segRecord{kind: recPut, id: id, data: data}).encode())); err != nil {
			dst.Abort()
			return false, err
		}
		off = dataOff + int64(dataLen)
	}
	if err := dst.Commit(segmentPath(base, 1), nil, nil); err != nil {
		return false, err
	}
	dst.File().Close() // recovery reopens the migrated segment
	if err := os.Remove(base); err != nil {
		return false, fmt.Errorf("pagestore: remove legacy log: %w", err)
	}
	return true, nil
}
