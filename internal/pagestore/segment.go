package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"blobseer/internal/wire"
)

// The disk store's log is segmented: page records append to the active
// segment file (<base>.000001, <base>.000002, ...) and the committer
// rolls to a fresh segment once the active one exceeds the configured
// size. Sealed segments are immutable except for compaction, which
// rewrites a whole segment in place (tmp + fsync + atomic rename over
// the same name), so the set of segment indices on disk is always
// contiguous from 1 — unlike the version manager's WAL, old segments
// still hold live page bodies and are never deleted.
//
// Every segment file starts with a fixed header carrying a generation
// number. Compaction bumps the generation of the segment it rewrites;
// the index snapshot records the generation it saw for every covered
// segment, so recovery detects a rewrite that happened after the
// snapshot (its offsets are stale for that segment) and rescans just
// that segment instead of trusting the snapshot.
//
// Segment header (16 bytes, little-endian):
//
//	uint32 segMagic | uint32 segFormat | uint64 generation
//
// Record frame, following the version WAL's layout:
//
//	uint32 recMagic | uint32 payloadLen | uint32 crc32(payload) | payload
//
// and the payload is a segRecord encoding (see encode below): one kind
// byte, the 16-byte page id, and — for puts — the page body. A torn
// frame at the tail of the highest segment (crash mid-append) is
// truncated on recovery; torn or corrupt frames anywhere else fail the
// open, because sealed segments and compaction outputs are only ever
// activated complete.

const (
	segMagic  = 0xB10B5E60
	segFormat = 1
	recMagic  = 0xB10B5EE5 // shared with the pre-segmentation log format

	segHeaderSize = 4 + 4 + 8
	recHeaderSize = 4 + 4 + 4
	// recPayloadMin is kind + page id, the payload of a tombstone and the
	// prefix of every put.
	recPayloadMin = 1 + 16
)

// record kinds.
const (
	recPut  byte = 1
	recTomb byte = 2
)

// segRecord is one decoded log record: a stored page or a tombstone
// marking a page reclaimed by the garbage collector.
type segRecord struct {
	kind byte
	id   wire.PageID
	data []byte // recPut only
}

func (r *segRecord) encode() []byte {
	w := wire.NewWriter(recPayloadMin + len(r.data))
	w.Uint8(r.kind)
	w.Raw(r.id[:])
	if r.kind == recPut {
		w.Raw(r.data)
	}
	return w.Bytes()
}

// decodeSegmentRecord parses a record payload. It never panics on
// arbitrary bytes and the encoding is canonical — a successful decode
// re-encodes to exactly the input — which FuzzDecodeSegmentRecord pins.
func decodeSegmentRecord(data []byte) (segRecord, error) {
	r := wire.NewReader(data)
	var rec segRecord
	rec.kind = r.Uint8()
	copy(rec.id[:], r.Raw(16))
	switch rec.kind {
	case recPut:
		rec.data = r.Raw(r.Remaining())
	case recTomb:
		// No body; trailing bytes are a corrupt frame.
	default:
		if r.Err() == nil {
			return segRecord{}, fmt.Errorf("pagestore: unknown record kind %d", rec.kind)
		}
	}
	if err := r.Finish(); err != nil {
		return segRecord{}, fmt.Errorf("pagestore: decoding record: %w", err)
	}
	return rec, nil
}

// frameRecord wraps an encoded payload in the on-disk frame.
func frameRecord(payload []byte) []byte {
	rec := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], recMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(payload))
	copy(rec[recHeaderSize:], payload)
	return rec
}

// framedRecBytes is the framed size of a record with an empty body —
// exactly one tombstone, and the fixed overhead of every put. The
// live/tombstone byte accounting that drives compaction victim
// selection counts framed bytes with this one constant, so a fully
// rewritten segment estimates exactly zero reclaimable bytes.
const framedRecBytes = recHeaderSize + recPayloadMin

// segment is one log file and its in-memory accounting. The file handle
// is swapped by compaction under mu; readers hold mu.RLock across their
// pread so a swap never closes a file out from under them.
type segment struct {
	idx uint32

	mu  sync.RWMutex
	f   *os.File
	gen uint64
	// size is the file length. For the active segment it is advanced
	// only by the unique committer (see disk.go); for sealed segments it
	// changes only under mu (compaction). Atomic so stats and the
	// compactor can read it from anywhere.
	size atomic.Int64

	// liveBytes is the payload bytes of records the index still points
	// at; tombBytes is the framed bytes of tombstone records, which
	// compaction preserves. size - segHeaderSize - liveBytes - tombBytes
	// estimates what a rewrite would reclaim.
	//
	// Canonical tombBytes-undercount note (the DHT metaSegment copy in
	// internal/dht/segment.go defers here): tombBytes may read LOW after
	// a snapshot-seeded recovery, because snapshots record only the live
	// index, not per-segment tombstone accounting — tombstones in
	// snapshot-covered segments are never re-counted. An undercount only
	// inflates the reclaim estimate, so the worst case is one no-op
	// rewrite of a tombstone-heavy segment per reopen, after which the
	// rewrite recomputes the true value. It can never mask reclaimable
	// space or drop a tombstone.
	liveBytes atomic.Int64
	tombBytes atomic.Int64
}

// segmentPath names segment idx of the store rooted at base.
func segmentPath(base string, idx uint32) string {
	return fmt.Sprintf("%s.%06d", base, idx)
}

// listSegments returns the segment indices present for base, ascending.
// Non-numeric siblings (the snapshot, tmp files, the legacy log) are
// ignored.
func listSegments(base string) ([]uint32, error) {
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		return nil, fmt.Errorf("pagestore: list segments: %w", err)
	}
	prefix := filepath.Base(base) + "."
	var out []uint32
	for _, ent := range entries {
		name := ent.Name()
		if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		idx, err := strconv.ParseUint(name[len(prefix):], 10, 32)
		if err != nil || idx == 0 {
			continue
		}
		out = append(out, uint32(idx))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so renames, creations and deletions in it
// are durable.
//
//blobseer:seglog sync-dir
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSegmentHeader writes the 16-byte header to a fresh segment file.
func writeSegmentHeader(f *os.File, gen uint64) error {
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("pagestore: write segment header: %w", err)
	}
	return nil
}

// readSegmentHeader validates a segment file's header and returns its
// generation.
func readSegmentHeader(f *os.File, path string) (uint64, error) {
	var hdr [segHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("pagestore: read segment header of %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic {
		return 0, fmt.Errorf("pagestore: bad segment magic in %s", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != segFormat {
		return 0, fmt.Errorf("pagestore: unknown segment format %d in %s", v, path)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

// scannedRecord is one record located by scanSegment: the decoded
// payload plus where its body sits in the file.
type scannedRecord struct {
	rec     segRecord
	dataOff int64 // file offset of the put body (payload start + kind + id)
	dataLen uint32
}

// scanSegment reads every record frame in one segment file, already
// open with a validated header. A torn frame at the tail is truncated
// away when allowTorn is set (the highest segment — a crash
// mid-append); anywhere else it fails the open. The file size after any
// truncation is returned.
//
//blobseer:seglog scan-segment
func scanSegment(f *os.File, path string, allowTorn bool, visit func(scannedRecord) error) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("pagestore: stat segment: %w", err)
	}
	logLen := info.Size()
	var off int64 = segHeaderSize
	var hdr [recHeaderSize]byte
	for off < logLen {
		if logLen-off < recHeaderSize {
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("pagestore: read record header at %d: %w", off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			return 0, fmt.Errorf("pagestore: bad record magic in %s at offset %d: log corrupted", path, off)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
		wantCRC := binary.LittleEndian.Uint32(hdr[8:12])
		payloadOff := off + recHeaderSize
		if payloadOff+int64(payloadLen) > logLen {
			break // torn payload
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, payloadOff); err != nil {
			return 0, fmt.Errorf("pagestore: read record payload at %d: %w", payloadOff, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return 0, fmt.Errorf("pagestore: record crc mismatch in %s at offset %d: log corrupted", path, off)
		}
		rec, err := decodeSegmentRecord(payload)
		if err != nil {
			return 0, fmt.Errorf("pagestore: %s at offset %d: %w", path, off, err)
		}
		if err := visit(scannedRecord{
			rec:     rec,
			dataOff: payloadOff + recPayloadMin,
			dataLen: payloadLen - recPayloadMin,
		}); err != nil {
			return 0, err
		}
		off = payloadOff + int64(payloadLen)
	}
	if off < logLen {
		if !allowTorn {
			return 0, fmt.Errorf("pagestore: torn record in sealed segment %s: log corrupted", path)
		}
		if err := f.Truncate(off); err != nil {
			return 0, fmt.Errorf("pagestore: truncate torn tail: %w", err)
		}
	}
	return off, nil
}

// errStoreClosed is returned by operations racing Close.
var errStoreClosed = errors.New("pagestore: store closed")

// Legacy single-file log (pre-segmentation) support. The old format had
// no file header and framed records as
//
//	uint32 recMagic | uint32 dataLen | 16-byte PageID | uint32 crc32(data) | data
//
// A store opened on such a file migrates it once: the records are
// rewritten into segment 1 (tmp + fsync + rename, so a crash
// mid-migration leaves the legacy file untouched) and the legacy file
// is removed.
const legacyHeaderSize = 4 + 4 + 16 + 4

// migrateLegacy converts the single-file log at base into segment 1.
// Returns whether a migration happened.
//
//blobseer:seglog migrate-legacy
func migrateLegacy(base string) (bool, error) {
	info, err := os.Stat(base)
	if err != nil || !info.Mode().IsRegular() {
		return false, nil // nothing to migrate
	}
	src, err := os.Open(base)
	if err != nil {
		return false, fmt.Errorf("pagestore: open legacy log: %w", err)
	}
	defer src.Close()

	tmp := base + ".migrate.tmp"
	dst, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return false, fmt.Errorf("pagestore: create migration tmp: %w", err)
	}
	if err := writeSegmentHeader(dst, 1); err != nil {
		dst.Close()
		return false, err
	}
	logLen := info.Size()
	var off int64
	var wOff int64 = segHeaderSize
	var hdr [legacyHeaderSize]byte
	for off < logLen {
		if logLen-off < legacyHeaderSize {
			break // torn header: the legacy format truncated these too
		}
		if _, err := src.ReadAt(hdr[:], off); err != nil {
			return false, fmt.Errorf("pagestore: read legacy header at %d: %w", off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != recMagic {
			return false, fmt.Errorf("pagestore: bad magic at offset %d: legacy log corrupted", off)
		}
		dataLen := binary.LittleEndian.Uint32(hdr[4:8])
		var id wire.PageID
		copy(id[:], hdr[8:24])
		wantCRC := binary.LittleEndian.Uint32(hdr[24:28])
		dataOff := off + legacyHeaderSize
		if dataOff+int64(dataLen) > logLen {
			break // torn payload
		}
		data := make([]byte, dataLen)
		if _, err := src.ReadAt(data, dataOff); err != nil {
			return false, fmt.Errorf("pagestore: read legacy payload at %d: %w", dataOff, err)
		}
		if crc32.ChecksumIEEE(data) != wantCRC {
			return false, fmt.Errorf("pagestore: crc mismatch for page %v at offset %d: legacy log corrupted", id, off)
		}
		frame := frameRecord((&segRecord{kind: recPut, id: id, data: data}).encode())
		if _, err := dst.WriteAt(frame, wOff); err != nil {
			dst.Close()
			return false, fmt.Errorf("pagestore: write migrated record: %w", err)
		}
		wOff += int64(len(frame))
		off = dataOff + int64(dataLen)
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		return false, fmt.Errorf("pagestore: sync migration tmp: %w", err)
	}
	if err := dst.Close(); err != nil {
		return false, fmt.Errorf("pagestore: close migration tmp: %w", err)
	}
	if err := os.Rename(tmp, segmentPath(base, 1)); err != nil {
		return false, fmt.Errorf("pagestore: activate migrated segment: %w", err)
	}
	if err := syncDir(filepath.Dir(base)); err != nil {
		return false, fmt.Errorf("pagestore: sync dir after migration: %w", err)
	}
	if err := os.Remove(base); err != nil {
		return false, fmt.Errorf("pagestore: remove legacy log: %w", err)
	}
	return true, nil
}
