package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"blobseer/internal/wire"
)

func pid(b byte) wire.PageID {
	var id wire.PageID
	id[0] = b
	id[15] = b ^ 0xFF
	return id
}

// exerciseStore runs the Store conformance suite on any engine.
func exerciseStore(t *testing.T, s Store) {
	t.Helper()

	// Missing page.
	if _, err := s.Get(pid(1), 0, wire.WholePage); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing = %v, want ErrNotFound", err)
	}
	if s.Has(pid(1)) {
		t.Fatal("Has on missing page")
	}

	// Round trip.
	data := []byte("0123456789abcdef")
	if err := s.Put(pid(1), data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(pid(1), 0, wire.WholePage)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if !s.Has(pid(1)) {
		t.Fatal("Has after Put")
	}

	// Ranged reads.
	got, err = s.Get(pid(1), 4, 6)
	if err != nil || !bytes.Equal(got, []byte("456789")) {
		t.Fatalf("ranged Get = %q, %v", got, err)
	}
	got, err = s.Get(pid(1), 10, wire.WholePage)
	if err != nil || !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("tail Get = %q, %v", got, err)
	}
	if got, err := s.Get(pid(1), 16, wire.WholePage); err != nil || len(got) != 0 {
		t.Fatalf("empty tail Get = %q, %v", got, err)
	}

	// Out-of-range reads.
	if _, err := s.Get(pid(1), 17, wire.WholePage); !errors.Is(err, ErrBadRange) {
		t.Fatalf("past-end Get err = %v, want ErrBadRange", err)
	}
	if _, err := s.Get(pid(1), 10, 7); !errors.Is(err, ErrBadRange) {
		t.Fatalf("overlong Get err = %v, want ErrBadRange", err)
	}

	// Idempotent re-put.
	if err := s.Put(pid(1), data); err != nil {
		t.Fatal(err)
	}
	pages, byteCount := s.Stats()
	if pages != 1 || byteCount != uint64(len(data)) {
		t.Fatalf("Stats after idempotent Put = %d pages, %d bytes", pages, byteCount)
	}

	// Zero-length page.
	if err := s.Put(pid(2), nil); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(pid(2), 0, wire.WholePage); err != nil || len(got) != 0 {
		t.Fatalf("empty page Get = %q, %v", got, err)
	}

	// Mutating the input buffer after Put must not affect the store.
	buf := []byte("mutable")
	s.Put(pid(3), buf)
	buf[0] = 'X'
	got, _ = s.Get(pid(3), 0, wire.WholePage)
	if string(got) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}

	// Delete removes a page; deleting again (or a never-stored id) is a
	// no-op.
	if err := s.Delete(pid(2)); err != nil {
		t.Fatal(err)
	}
	if s.Has(pid(2)) {
		t.Fatal("Has after Delete")
	}
	if _, err := s.Get(pid(2), 0, wire.WholePage); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete(pid(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(pid(99)); err != nil {
		t.Fatal(err)
	}
	pages, byteCount = s.Stats()
	if pages != 2 || byteCount != uint64(len(data)+len(buf)) {
		t.Fatalf("Stats after Delete = %d pages, %d bytes", pages, byteCount)
	}
}

func TestMemConformance(t *testing.T) { exerciseStore(t, NewMem()) }

func TestDiskConformance(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "pages.log"), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	exerciseStore(t, d)
}

func TestMemConcurrentPutGet(t *testing.T) {
	m := NewMem()
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := wire.NewPageIDGen()
			for i := 0; i < perWorker; i++ {
				id := gen.Next()
				data := []byte(fmt.Sprintf("w%d-i%d", w, i))
				if err := m.Put(id, data); err != nil {
					t.Error(err)
					return
				}
				got, err := m.Get(id, 0, wire.WholePage)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("Get = %q, %v", got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	pages, _ := m.Stats()
	if pages != workers*perWorker {
		t.Fatalf("pages = %d, want %d", pages, workers*perWorker)
	}
}

func TestDiskRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[byte][]byte{}
	for i := byte(0); i < 20; i++ {
		data := bytes.Repeat([]byte{i}, int(i)*13)
		want[i] = data
		if err := d.Put(pid(i), data); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	// Reopen and verify every page survived.
	d2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i, data := range want {
		got, err := d2.Get(pid(i), 0, wire.WholePage)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("page %d after recovery: %q, %v", i, got, err)
		}
	}
	pages, _ := d2.Stats()
	if pages != 20 {
		t.Fatalf("pages after recovery = %d", pages)
	}
}

func TestDiskTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d, _ := OpenDisk(path, DiskOptions{})
	d.Put(pid(1), []byte("complete record"))
	d.Put(pid(2), []byte("this one will be torn"))
	d.Close()

	// Chop bytes off the final record to simulate a crash mid-append.
	seg1 := segmentPath(path, 1)
	info, _ := os.Stat(seg1)
	if err := os.Truncate(seg1, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatalf("recovery with torn tail should succeed: %v", err)
	}
	defer d2.Close()
	if !d2.Has(pid(1)) {
		t.Fatal("intact record lost")
	}
	if d2.Has(pid(2)) {
		t.Fatal("torn record resurrected")
	}

	// The store must be appendable after truncation.
	if err := d2.Put(pid(3), []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	got, err := d2.Get(pid(3), 0, wire.WholePage)
	if err != nil || string(got) != "after recovery" {
		t.Fatalf("Get after recovery append: %q, %v", got, err)
	}
}

func TestDiskDetectsMidLogCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d, _ := OpenDisk(path, DiskOptions{})
	d.Put(pid(1), []byte("first record here"))
	d.Put(pid(2), []byte("second record here"))
	d.Close()

	// Flip a payload byte of the first record.
	f, _ := os.OpenFile(segmentPath(path, 1), os.O_RDWR, 0)
	f.WriteAt([]byte{0xFF}, segHeaderSize+recHeaderSize+recPayloadMin+2)
	f.Close()

	if _, err := OpenDisk(path, DiskOptions{}); err == nil {
		t.Fatal("mid-log corruption not detected")
	}
}

func TestDiskDetectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.log")
	d, _ := OpenDisk(path, DiskOptions{})
	d.Put(pid(1), []byte("record"))
	d.Close()

	f, _ := os.OpenFile(segmentPath(path, 1), os.O_RDWR, 0)
	var bad [4]byte
	binary.LittleEndian.PutUint32(bad[:], 0x12345678)
	f.WriteAt(bad[:], segHeaderSize)
	f.Close()

	if _, err := OpenDisk(path, DiskOptions{}); err == nil {
		t.Fatal("bad record magic not detected")
	}
}

func TestDiskSyncMode(t *testing.T) {
	d, err := OpenDisk(filepath.Join(t.TempDir(), "pages.log"), DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put(pid(9), []byte("synced")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(pid(9), 0, wire.WholePage)
	if err != nil || string(got) != "synced" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestDiskUseAfterClose(t *testing.T) {
	d, _ := OpenDisk(filepath.Join(t.TempDir(), "pages.log"), DiskOptions{})
	d.Close()
	if err := d.Put(pid(1), []byte("x")); err == nil {
		t.Fatal("Put after Close should fail")
	}
	if _, err := d.Get(pid(1), 0, wire.WholePage); err == nil {
		t.Fatal("Get after Close should fail")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestQuickMemMatchesDisk(t *testing.T) {
	// Property: Mem and Disk agree on every operation sequence.
	mem := NewMem()
	disk, err := OpenDisk(filepath.Join(t.TempDir(), "pages.log"), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	f := func(idByte byte, data []byte, off, length uint16) bool {
		id := pid(idByte)
		if err := mem.Put(id, data); err != nil {
			return false
		}
		if err := disk.Put(id, data); err != nil {
			return false
		}
		mGot, mErr := mem.Get(id, uint32(off), uint32(length))
		dGot, dErr := disk.Get(id, uint32(off), uint32(length))
		if (mErr == nil) != (dErr == nil) {
			return false
		}
		if mErr != nil {
			return errors.Is(mErr, ErrBadRange) && errors.Is(dErr, ErrBadRange)
		}
		return bytes.Equal(mGot, dGot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
