package pagestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sort"

	"blobseer/internal/wire"
)

// An index snapshot is the page index — every live page's segment,
// offset and length — serialized at a segment boundary. Unlike the
// version manager's snapshot it carries no payload data: page bodies
// stay in their segments forever, so the snapshot only spares reopen
// the full rescan (reading and CRC-checking every page body). Recovery
// loads the newest valid snapshot, verifies each covered segment's
// generation, and replays only the tail segments (plus any segment a
// post-snapshot compaction rewrote, detected by a generation mismatch).
// A torn or corrupt snapshot degrades to a full rescan, which is always
// possible because data segments are never deleted.
//
// File layout mirrors a segment record frame, with its own magic:
//
//	uint32 psnapMagic | uint32 dataLen | uint32 crc32(data) | data
//
// written to <base>.snapshot.tmp, fsynced (when the store syncs), then
// atomically renamed to <base>.snapshot.
//
// The payload encoding is canonical: covered-segment generations in
// index order, entries strictly ascending by page id, counts bounded by
// the remaining input, no trailing bytes. That makes encode∘decode the
// identity on valid inputs — the property FuzzDecodeIndexSnapshot pins.

const (
	psnapMagic = 0xB10B55A9
	psnapFmt   = 1
)

// snapshotPath names the live index snapshot of the store rooted at base.
func snapshotPath(base string) string { return base + ".snapshot" }

// snapshotTmpPath names the in-progress snapshot; never read by recovery.
func snapshotTmpPath(base string) string { return base + ".snapshot.tmp" }

// compactTmpPath names a compaction rewrite in progress; never read by
// recovery.
func compactTmpPath(base string) string { return base + ".compact.tmp" }

// indexEntry locates one live page body: data byte range [off, off+len)
// inside segment seg.
type indexEntry struct {
	seg uint32
	off int64
	len uint32
}

// snapEntry pairs a page id with its location, the unit of the snapshot
// encoding.
type snapEntry struct {
	id wire.PageID
	indexEntry
}

// indexSnapshot is a consistent cut of the page index. Segments
// 1..len(gens) are covered: every record in them is reflected in the
// entries, and gens[i] is segment i+1's generation at the cut. Segments
// above len(gens) are the tail recovery replays.
type indexSnapshot struct {
	gens    []uint64
	entries []snapEntry
}

// encodeIndexSnapshot serializes s canonically (entries sorted by id).
func encodeIndexSnapshot(s *indexSnapshot) []byte {
	sort.Slice(s.entries, func(i, j int) bool {
		return bytes.Compare(s.entries[i].id[:], s.entries[j].id[:]) < 0
	})
	w := wire.NewWriter(16 + len(s.gens)*8 + len(s.entries)*32)
	w.Uint32(psnapFmt)
	w.Uint32(uint32(len(s.gens)))
	for _, g := range s.gens {
		w.Uint64(g)
	}
	w.Uint32(uint32(len(s.entries)))
	for _, e := range s.entries {
		w.Raw(e.id[:])
		w.Uint32(e.seg)
		w.Uint64(uint64(e.off))
		w.Uint32(e.len)
	}
	return w.Bytes()
}

// errSnapshotEncoding tags structurally invalid snapshot payloads.
var errSnapshotEncoding = errors.New("pagestore: invalid snapshot encoding")

// snapCount reads a length prefix and bounds it by the bytes that many
// entries of at least elemBytes each would need, so a hostile prefix
// cannot drive a huge allocation.
func snapCount(r *wire.Reader, elemBytes int) (int, error) {
	n := r.Uint32()
	if r.Err() != nil {
		return 0, r.Err()
	}
	if int64(n)*int64(elemBytes) > int64(r.Remaining()) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining input", errSnapshotEncoding, n)
	}
	return int(n), nil
}

// decodeIndexSnapshot parses a snapshot payload. It never panics on
// arbitrary bytes and rejects non-canonical input — unsorted or
// duplicate ids, entries pointing outside the covered segments or
// before the segment header, trailing bytes — so a successful decode
// re-encodes to exactly the input.
func decodeIndexSnapshot(data []byte) (*indexSnapshot, error) {
	r := wire.NewReader(data)
	if f := r.Uint32(); r.Err() == nil && f != psnapFmt {
		return nil, fmt.Errorf("%w: unknown format %d", errSnapshotEncoding, f)
	}
	s := &indexSnapshot{}
	nsegs, err := snapCount(r, 8)
	if err != nil {
		return nil, err
	}
	s.gens = make([]uint64, 0, nsegs)
	for i := 0; i < nsegs; i++ {
		s.gens = append(s.gens, r.Uint64())
	}
	nent, err := snapCount(r, 32)
	if err != nil {
		return nil, err
	}
	s.entries = make([]snapEntry, 0, nent)
	for i := 0; i < nent; i++ {
		var e snapEntry
		copy(e.id[:], r.Raw(16))
		e.seg = r.Uint32()
		e.off = int64(r.Uint64())
		e.len = r.Uint32()
		if r.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(e.id[:], s.entries[i-1].id[:]) <= 0 {
			return nil, fmt.Errorf("%w: page ids not strictly ascending", errSnapshotEncoding)
		}
		if e.seg == 0 || int(e.seg) > nsegs {
			return nil, fmt.Errorf("%w: entry in uncovered segment %d", errSnapshotEncoding, e.seg)
		}
		if e.off < segHeaderSize+recHeaderSize+recPayloadMin {
			return nil, fmt.Errorf("%w: entry offset %d inside segment header", errSnapshotEncoding, e.off)
		}
		s.entries = append(s.entries, e)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("pagestore: decoding snapshot: %w", err)
	}
	return s, nil
}

// loadSnapshot reads and validates the snapshot file. A missing file is
// (nil, nil); a torn or corrupt one is an error the caller downgrades
// to a full rescan.
//
//blobseer:seglog load-snapshot
func loadSnapshot(path string) (*indexSnapshot, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pagestore: read snapshot: %w", err)
	}
	if len(raw) < recHeaderSize {
		return nil, fmt.Errorf("pagestore: snapshot torn: %d bytes", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != psnapMagic {
		return nil, errors.New("pagestore: bad snapshot magic")
	}
	dataLen := binary.LittleEndian.Uint32(raw[4:8])
	wantCRC := binary.LittleEndian.Uint32(raw[8:12])
	if int64(recHeaderSize)+int64(dataLen) != int64(len(raw)) {
		return nil, fmt.Errorf("pagestore: snapshot torn: declares %d payload bytes, has %d",
			dataLen, len(raw)-recHeaderSize)
	}
	data := raw[recHeaderSize:]
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, errors.New("pagestore: snapshot crc mismatch")
	}
	return decodeIndexSnapshot(data)
}

// writeSnapshotFile writes the framed payload to the tmp path and, when
// syncing, fsyncs it — everything short of the activating rename.
//
//blobseer:seglog snapshot-file
func writeSnapshotFile(base string, payload []byte, fsync bool) error {
	frame := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], psnapMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[recHeaderSize:], payload)
	tmp := snapshotTmpPath(base)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("pagestore: create snapshot tmp: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("pagestore: write snapshot: %w", err)
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("pagestore: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pagestore: close snapshot tmp: %w", err)
	}
	return nil
}
