package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"blobseer/internal/seglog"
	"blobseer/internal/wire"
)

// An index snapshot is the page index — every live page's segment,
// offset and length — serialized at a segment boundary. Unlike the
// version manager's snapshot it carries no payload data: page bodies
// stay in their segments forever, so the snapshot only spares reopen
// the full rescan (reading and CRC-checking every page body). Recovery
// loads the newest valid snapshot, verifies each covered segment's
// generation, and replays only the tail segments (plus any segment a
// post-snapshot compaction rewrote, detected by a generation mismatch).
// A torn or corrupt snapshot degrades to a full rescan, which is always
// possible because data segments are never deleted.
//
// The file envelope and the shared prefix — format number, covered
// segments' generations and (since v2) their live/tombstone byte
// counters — are seglog's (see internal/seglog/indexsnap.go for the v2
// story); the entry section is this store's own:
//
//	per entry: 16-byte id | uint32 seg | uint64 off | uint32 len
//
// The payload encoding is canonical: entries strictly ascending by page
// id, counts bounded by the remaining input, no trailing bytes. That
// makes encode∘decode the identity on valid inputs — the property
// FuzzDecodeIndexSnapshot pins.

const (
	psnapMagic = 0xB10B55A9
	psnapFmt   = 1
	psnapFmtV2 = 2 // adds per-segment live/tombstone byte counters
)

// snapshotPath names the live index snapshot of the store rooted at base.
func snapshotPath(base string) string { return seglog.SnapshotPath(base) }

// snapshotTmpPath names the in-progress snapshot; never read by recovery.
func snapshotTmpPath(base string) string { return seglog.SnapshotTmpPath(base) }

// compactTmpPath names a compaction rewrite in progress; never read by
// recovery.
func compactTmpPath(base string) string { return seglog.CompactTmpPath(base) }

// indexEntry locates one live page body: data byte range [off, off+len)
// inside segment seg.
type indexEntry struct {
	seg uint32
	off int64
	len uint32
}

// snapEntry pairs a page id with its location, the unit of the snapshot
// encoding.
type snapEntry struct {
	id wire.PageID
	indexEntry
}

// indexSnapshot is a consistent cut of the page index. Segments
// 1..len(meta.Segs) are covered: every record in them is reflected in
// the entries, and meta.Segs[i] describes segment i+1 at the cut.
// Segments above the covered range are the tail recovery replays.
type indexSnapshot struct {
	meta    seglog.IndexMeta
	entries []snapEntry
}

// encodeIndexSnapshot serializes s canonically (entries sorted by id).
func encodeIndexSnapshot(s *indexSnapshot) []byte {
	sort.Slice(s.entries, func(i, j int) bool {
		return bytes.Compare(s.entries[i].id[:], s.entries[j].id[:]) < 0
	})
	w := wire.NewWriter(16 + len(s.meta.Segs)*24 + len(s.entries)*32)
	seglog.EncodeIndexMeta(w, psnapFmt, psnapFmtV2, &s.meta)
	w.Uint32(uint32(len(s.entries)))
	for _, e := range s.entries {
		w.Raw(e.id[:])
		w.Uint32(e.seg)
		w.Uint64(uint64(e.off))
		w.Uint32(e.len)
	}
	return w.Bytes()
}

// errSnapshotEncoding tags structurally invalid snapshot payloads.
var errSnapshotEncoding = errors.New("pagestore: invalid snapshot encoding")

// decodeIndexSnapshot parses a snapshot payload. It never panics on
// arbitrary bytes and rejects non-canonical input — unsorted or
// duplicate ids, entries pointing outside the covered segments or
// before the segment header, trailing bytes — so a successful decode
// re-encodes to exactly the input (the decoded meta remembers whether
// the input was v1 or v2).
func decodeIndexSnapshot(data []byte) (*indexSnapshot, error) {
	r := wire.NewReader(data)
	meta, err := seglog.DecodeIndexMeta(r, psnapFmt, psnapFmtV2, errSnapshotEncoding)
	if err != nil {
		return nil, err
	}
	s := &indexSnapshot{meta: *meta}
	nsegs := len(s.meta.Segs)
	nent, err := seglog.Count(r, 32, errSnapshotEncoding)
	if err != nil {
		return nil, err
	}
	s.entries = make([]snapEntry, 0, nent)
	for i := 0; i < nent; i++ {
		var e snapEntry
		copy(e.id[:], r.Raw(16))
		e.seg = r.Uint32()
		e.off = int64(r.Uint64())
		e.len = r.Uint32()
		if r.Err() != nil {
			break
		}
		if i > 0 && bytes.Compare(e.id[:], s.entries[i-1].id[:]) <= 0 {
			return nil, fmt.Errorf("%w: page ids not strictly ascending", errSnapshotEncoding)
		}
		if e.seg == 0 || int(e.seg) > nsegs {
			return nil, fmt.Errorf("%w: entry in uncovered segment %d", errSnapshotEncoding, e.seg)
		}
		if e.off < segHeaderSize+recHeaderSize+recPayloadMin {
			return nil, fmt.Errorf("%w: entry offset %d inside segment header", errSnapshotEncoding, e.off)
		}
		s.entries = append(s.entries, e)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("pagestore: decoding snapshot: %w", err)
	}
	return s, nil
}

// loadSnapshot reads and validates the snapshot file. A missing file is
// (nil, nil); a torn or corrupt one is an error the caller downgrades
// to a full rescan.
func loadSnapshot(path string) (*indexSnapshot, error) {
	data, err := segFmt.LoadSnapshotFile(path)
	if err != nil || data == nil {
		return nil, err
	}
	return decodeIndexSnapshot(data)
}
