package seglog

import (
	"fmt"
	"os"
	"path/filepath"
)

// SegmentWriter builds a replacement segment file — a compaction
// rewrite or a legacy-log migration — in a tmp path and activates it by
// atomic rename. The tmp file is ALWAYS fsynced before the rename, even
// for stores that do not sync appends: the rename replaces previously
// durable data, so the replacement must itself be durable first.
type SegmentWriter struct {
	ft      *Format
	f       *os.File
	tmp     string
	buf     []byte
	off     int64 // logical end offset (header + appended frames)
	flushed int64 // bytes written through to the file
}

// NewSegmentWriter creates the tmp file and, for header-carrying
// formats, stamps it with gen.
func (ft *Format) NewSegmentWriter(tmp string, gen uint64) (*SegmentWriter, error) {
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("%s: create segment tmp: %w", ft.Name, err)
	}
	w := &SegmentWriter{ft: ft, f: f, tmp: tmp, buf: make([]byte, 0, 1<<16)}
	if ft.SegMagic != 0 {
		if err := ft.WriteHeader(f, gen); err != nil {
			f.Close()
			return nil, err
		}
	}
	w.off = ft.DataStart()
	w.flushed = w.off
	return w, nil
}

// Append buffers one framed record and returns the file offset its
// frame will start at. Writes go to the file in 1 MB batches.
func (w *SegmentWriter) Append(frame []byte) (int64, error) {
	start := w.off
	w.buf = append(w.buf, frame...)
	w.off += int64(len(frame))
	if len(w.buf) >= 1<<20 {
		if err := w.flush(); err != nil {
			return 0, err
		}
	}
	return start, nil
}

func (w *SegmentWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf, w.flushed); err != nil {
		return fmt.Errorf("%s: write segment tmp: %w", w.ft.Name, err)
	}
	w.flushed += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// Size reports the logical size of the segment built so far.
func (w *SegmentWriter) Size() int64 { return w.off }

// File exposes the underlying handle after a successful Commit, for
// stores that keep serving reads from the renamed file.
func (w *SegmentWriter) File() *os.File { return w.f }

// Commit makes the built segment live: flush, fsync, the written hook
// (a crash-injection point; may be nil), atomic rename onto path, a
// directory sync, and the renamed hook (may be nil). On success the
// file handle stays open (see File); on any error it is closed and the
// caller abandons the rewrite — a leftover tmp is removed by the next
// recovery.
//
//blobseer:seglog rewrite-commit
func (w *SegmentWriter) Commit(path string, written, renamed func() error) error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("%s: sync segment tmp: %w", w.ft.Name, err)
	}
	if written != nil {
		if err := written(); err != nil {
			w.f.Close()
			return err
		}
	}
	if err := os.Rename(w.tmp, path); err != nil {
		w.f.Close()
		return fmt.Errorf("%s: activate rewritten segment: %w", w.ft.Name, err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		w.f.Close()
		return fmt.Errorf("%s: sync dir after rewrite: %w", w.ft.Name, err)
	}
	if renamed != nil {
		if err := renamed(); err != nil {
			w.f.Close()
			return err
		}
	}
	return nil
}

// Abort discards an unfinished rewrite: the handle closes and the tmp
// file, never activated, is garbage the next recovery removes.
func (w *SegmentWriter) Abort() { w.f.Close() }
