package seglog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// Snapshot files reuse the record-frame envelope with the store's
// snapshot magic:
//
//	uint32 SnapMagic | uint32 dataLen | uint32 crc32(data) | data
//
// written to <base>.snapshot.tmp, fsynced (when the store syncs), then
// atomically renamed to <base>.snapshot — so the snapshot visible under
// the live name is always internally complete. The payload encoding is
// the store's business (full state for the version manager, an index
// snapshot for the page and metadata logs).

// LoadSnapshotFile reads and validates the snapshot envelope at path
// and returns its payload. A missing file is (nil, nil); a torn or
// corrupt one is an error the caller downgrades to a full rescan or
// replay.
//
//blobseer:seglog load-snapshot
func (ft *Format) LoadSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%s: read snapshot: %w", ft.Name, err)
	}
	if len(raw) < FrameHeaderSize {
		return nil, fmt.Errorf("%s: snapshot torn: %d bytes", ft.Name, len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:4]) != ft.SnapMagic {
		return nil, fmt.Errorf("%s: bad snapshot magic", ft.Name)
	}
	dataLen := binary.LittleEndian.Uint32(raw[4:8])
	wantCRC := binary.LittleEndian.Uint32(raw[8:12])
	if int64(FrameHeaderSize)+int64(dataLen) != int64(len(raw)) {
		return nil, fmt.Errorf("%s: snapshot torn: declares %d payload bytes, has %d",
			ft.Name, dataLen, len(raw)-FrameHeaderSize)
	}
	data := raw[FrameHeaderSize:]
	if crc32.ChecksumIEEE(data) != wantCRC {
		return nil, fmt.Errorf("%s: snapshot crc mismatch", ft.Name)
	}
	return data, nil
}

// WriteSnapshotFile writes the framed payload to the tmp path and, when
// syncing, fsyncs it — everything short of the activating rename.
//
//blobseer:seglog snapshot-file
func (ft *Format) WriteSnapshotFile(base string, payload []byte, fsync bool) error {
	frame := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], ft.SnapMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[FrameHeaderSize:], payload)
	tmp := SnapshotTmpPath(base)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("%s: create snapshot tmp: %w", ft.Name, err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("%s: write snapshot: %w", ft.Name, err)
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("%s: sync snapshot: %w", ft.Name, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: close snapshot tmp: %w", ft.Name, err)
	}
	return nil
}

// PublishSnapshot writes the framed payload to the tmp path and
// activates it by atomic rename (plus a directory sync when the store
// syncs). The two hooks are the stores' crash-injection points: written
// fires once the tmp file is fully on disk, renamed once the snapshot
// is live. Either may be nil.
//
//blobseer:seglog snapshot-write
func (ft *Format) PublishSnapshot(base string, payload []byte, fsync bool, written, renamed func() error) error {
	if err := ft.WriteSnapshotFile(base, payload, fsync); err != nil {
		return err
	}
	if written != nil {
		if err := written(); err != nil {
			return err
		}
	}
	if err := os.Rename(SnapshotTmpPath(base), SnapshotPath(base)); err != nil {
		return fmt.Errorf("%s: activate snapshot: %w", ft.Name, err)
	}
	if fsync {
		if err := SyncDir(filepath.Dir(base)); err != nil {
			return fmt.Errorf("%s: sync snapshot dir: %w", ft.Name, err)
		}
	}
	if renamed != nil {
		if err := renamed(); err != nil {
			return err
		}
	}
	return nil
}
