package seglog

import (
	"errors"
	"testing"
)

func TestFilterTombsKeepsOnlyCoveredKeys(t *testing.T) {
	tombs := map[string]bool{"a": true, "b": true, "c": true}
	// Earlier segments hold puts for a and c (b's put is long gone).
	needed, err := FilterTombs(tombs, func(observe func(string) bool) error {
		for _, k := range []string{"x", "a", "y", "c"} {
			if !observe(k) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(needed) != 2 || !needed["a"] || !needed["c"] {
		t.Fatalf("needed = %v, want {a, c}", needed)
	}
}

func TestFilterTombsEmptySkipsScan(t *testing.T) {
	needed, err := FilterTombs(map[string]bool{}, func(func(string) bool) error {
		t.Fatal("scan ran with no tombstones to resolve")
		return nil
	})
	if err != nil || len(needed) != 0 {
		t.Fatalf("needed = %v, err = %v", needed, err)
	}
}

func TestFilterTombsStopsEarlyWhenAllNeeded(t *testing.T) {
	tombs := map[string]bool{"a": true, "b": true}
	calls := 0
	_, err := FilterTombs(tombs, func(observe func(string) bool) error {
		for _, k := range []string{"a", "b", "never-reached", "never-reached"} {
			calls++
			if !observe(k) {
				return nil
			}
		}
		return errors.New("scan was not stopped")
	})
	if err != nil {
		t.Fatal(err)
	}
	// observe("b") resolves the last unknown and returns false: 2 calls.
	if calls != 2 {
		t.Fatalf("scan observed %d keys, want early stop at 2", calls)
	}
}

func TestFilterTombsPropagatesScanError(t *testing.T) {
	errScan := errors.New("disk fault")
	_, err := FilterTombs(map[string]bool{"a": true}, func(func(string) bool) error {
		return errScan
	})
	if !errors.Is(err, errScan) {
		t.Fatalf("err = %v, want %v", err, errScan)
	}
}
