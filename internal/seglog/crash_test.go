package seglog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The shared core's fault points, driven as one table: a hook returning
// an error stands in for a crash at that point (the process would simply
// stop), and the assertions state what the next recovery must find —
// either the old state intact, or the new state fully activated, never a
// half state. The stores' own crash-injection tables re-prove this
// end-to-end; this table pins the core in isolation.

var testFmt = &Format{
	Name:      "testlog",
	RecMagic:  0x7E57C0DE,
	SegMagic:  0x5E67E57A,
	SegFormat: 1,
	SnapMagic: 0x5AA75E67,
}

// walFmt is the headerless dialect (records at offset 0, no generation).
var testWALFmt = &Format{
	Name:      "testwal",
	RecMagic:  0x7E57C0DE,
	SnapMagic: 0x5AA75E67,
}

var errCrash = errors.New("injected crash")

func crashAt(target string, point string) func() error {
	if target != point {
		return nil
	}
	return func() error { return errCrash }
}

func TestPublishSnapshotCrashPoints(t *testing.T) {
	for _, point := range []string{"tmp-written", "renamed"} {
		t.Run(point, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "log")
			if err := testFmt.PublishSnapshot(base, []byte("old state"), true, nil, nil); err != nil {
				t.Fatalf("seed snapshot: %v", err)
			}

			err := testFmt.PublishSnapshot(base, []byte("new state"), true,
				crashAt(point, "tmp-written"), crashAt(point, "renamed"))
			if !errors.Is(err, errCrash) {
				t.Fatalf("crash at %s not surfaced: %v", point, err)
			}

			// What recovery finds. RemoveTmp is what every store's open does
			// first; the live snapshot must then be one complete state.
			RemoveTmp(base)
			data, err := testFmt.LoadSnapshotFile(SnapshotPath(base))
			if err != nil {
				t.Fatalf("snapshot after crash at %s unreadable: %v", point, err)
			}
			want := "old state"
			if point == "renamed" {
				want = "new state" // the rename happened; the crash was after activation
			}
			if string(data) != want {
				t.Fatalf("snapshot after crash at %s = %q, want %q", point, data, want)
			}
			if _, err := os.Stat(SnapshotTmpPath(base)); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("tmp survives recovery after crash at %s", point)
			}
		})
	}
}

func TestSegmentWriterCommitCrashPoints(t *testing.T) {
	for _, point := range []string{"tmp-written", "renamed"} {
		t.Run(point, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "log")
			path := SegmentPath(base, 1)
			writeTestSegment(t, testFmt, path, 3, "orig")

			w, err := testFmt.NewSegmentWriter(CompactTmpPath(base), 7)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Append(testFmt.Frame([]byte("rewritten-0"))); err != nil {
				t.Fatal(err)
			}
			err = w.Commit(path, crashAt(point, "tmp-written"), crashAt(point, "renamed"))
			if !errors.Is(err, errCrash) {
				t.Fatalf("crash at %s not surfaced: %v", point, err)
			}

			RemoveTmp(base)
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			gen, err := testFmt.ReadHeader(f, path)
			if err != nil {
				t.Fatalf("segment after crash at %s unreadable: %v", point, err)
			}
			var payloads []string
			if _, err := testFmt.Scan(f, path, false, func(p []byte, _ int64) error {
				payloads = append(payloads, string(p))
				return nil
			}); err != nil {
				t.Fatalf("segment after crash at %s does not scan: %v", point, err)
			}
			// Before the rename the old segment is untouched; after it the
			// rewrite is fully live, generation bump included.
			if point == "tmp-written" {
				if gen != 1 || len(payloads) != 3 || payloads[0] != "orig-0" {
					t.Fatalf("old segment damaged before rename: gen %d, %v", gen, payloads)
				}
			} else {
				if gen != 7 || len(payloads) != 1 || payloads[0] != "rewritten-0" {
					t.Fatalf("rewrite not fully live after rename: gen %d, %v", gen, payloads)
				}
			}
		})
	}
}

// writeTestSegment creates a sealed segment at path with n framed
// records "<tag>-<i>", generation 1.
func writeTestSegment(t *testing.T, ft *Format, path string, n int, tag string) {
	t.Helper()
	w, err := ft.NewSegmentWriter(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append(ft.Frame([]byte(tag + "-" + string(rune('0'+i))))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(path, nil, nil); err != nil {
		t.Fatal(err)
	}
	w.File().Close()
}

func TestScanTruncatesTornTailOnHighestSegmentOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.000001")
	writeTestSegment(t, testFmt, path, 2, "rec")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := info.Size()
	// Tear the tail: append a frame and cut it mid-payload, as a crash
	// between a batch's write and its sync would.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := testFmt.Frame([]byte("torn-away"))
	if _, err := f.WriteAt(frame[:len(frame)-3], whole); err != nil {
		t.Fatal(err)
	}

	// A sealed segment must refuse the torn frame...
	if _, err := testFmt.Scan(f, path, false, func([]byte, int64) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "torn") {
		t.Fatalf("sealed segment accepted a torn record: %v", err)
	}
	// ...and the highest segment truncates it away and keeps the prefix.
	var got []string
	end, err := testFmt.Scan(f, path, true, func(p []byte, _ int64) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("torn-tail recovery: %v", err)
	}
	if end != whole || len(got) != 2 {
		t.Fatalf("recovered to offset %d with %v, want offset %d with 2 records", end, got, whole)
	}
	if info, err = f.Stat(); err != nil || info.Size() != whole {
		t.Fatalf("torn tail not truncated: size %d, want %d (err %v)", info.Size(), whole, err)
	}
	f.Close()
}

func TestScanRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.000001")
	writeTestSegment(t, testFmt, path, 2, "rec")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]func([]byte){
		"payload-bit-flip": func(b []byte) { b[len(b)-1] ^= 0x01 },
		"frame-magic":      func(b []byte) { b[HeaderSize] ^= 0xFF },
	} {
		t.Run(name, func(t *testing.T) {
			bad := append([]byte(nil), raw...)
			corrupt(bad)
			p := filepath.Join(t.TempDir(), "bad.000001")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(p)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// Corruption is corruption on every segment: allowTorn only
			// forgives a clean tear at the tail, never a failed check.
			if _, err := testFmt.Scan(f, p, true, func([]byte, int64) error { return nil }); err == nil {
				t.Fatal("scan accepted corrupted segment")
			}
		})
	}
}

func TestHeaderlessSegmentsStartAtZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.000001")
	w, err := testWALFmt.NewSegmentWriter(path, 99)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Append(testWALFmt.Frame([]byte("ev")))
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("headerless first record at offset %d, want 0", first)
	}
	if err := w.Commit(path, nil, nil); err != nil {
		t.Fatal(err)
	}
	w.File().Close()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if _, err := testWALFmt.Scan(f, path, false, func(p []byte, off int64) error {
		if off != FrameHeaderSize {
			t.Errorf("payload offset %d, want %d", off, FrameHeaderSize)
		}
		n++
		return nil
	}); err != nil || n != 1 {
		t.Fatalf("headerless scan: %d records, %v", n, err)
	}
}
