package seglog

import (
	"sync"
	"testing"
)

// drive runs one capture against a model state map, following the
// protocol stores use, and returns the merged entries.
func drive(t *testing.T, tr *Tracker[string, int], state map[string]int) map[string]int {
	t.Helper()
	cut := tr.Begin()
	if cut.Full() {
		seed := make(map[string]int, len(state))
		for k, v := range state {
			seed[k] = v
		}
		cut.Seed(seed)
	} else {
		for k := range cut.Dirty() {
			v, ok := state[k]
			cut.Resolve(k, v, ok)
		}
	}
	return cut.Merged()
}

func wantEntries(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged has %d entries, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("merged[%q] = %d,%v, want %d", k, gv, ok, v)
		}
	}
}

// TestCaptureIncremental pins the core diff mechanics: a full seed,
// then an incremental capture that sees exactly the marked updates and
// deletions merged over the baseline.
func TestCaptureIncremental(t *testing.T) {
	tr := &Tracker[string, int]{}
	state := map[string]int{"a": 1, "b": 2, "c": 3}

	cut := tr.Begin()
	if !cut.Full() {
		t.Fatal("first capture must be full")
	}
	wantEntries(t, drive(t, tr, state), state)
	// merged not committed yet — abort keeps the next capture full
	cut2 := tr.Begin()
	if !cut2.Full() {
		t.Fatal("capture after uncommitted capture must still be full")
	}
	cut2.Seed(map[string]int{"a": 1, "b": 2, "c": 3})
	cut2.Merged()
	cut2.Commit()

	// Mutate: update b, delete c, insert d; a untouched.
	state["b"] = 20
	tr.Mark("b")
	delete(state, "c")
	tr.Mark("c")
	state["d"] = 4
	tr.Mark("d")

	cut3 := tr.Begin()
	if cut3.Full() {
		t.Fatal("capture after a committed baseline must be incremental")
	}
	if len(cut3.Dirty()) != 3 {
		t.Fatalf("dirty = %v, want {b,c,d}", cut3.Dirty())
	}
	for k := range cut3.Dirty() {
		v, ok := state[k]
		cut3.Resolve(k, v, ok)
	}
	wantEntries(t, cut3.Merged(), map[string]int{"a": 1, "b": 20, "d": 4})
	cut3.Commit()

	// Nothing changed: the next incremental capture is the same set.
	wantEntries(t, drive(t, tr, state), map[string]int{"a": 1, "b": 20, "d": 4})
}

// TestCaptureAbortRetainsDirtyAndCountdown is the countdown-bug-family
// regression: a failed publish must neither consume the event countdown
// nor lose the dirty keys, so the next pass retries with a correct
// diff.
func TestCaptureAbortRetainsDirtyAndCountdown(t *testing.T) {
	tr := &Tracker[string, int]{}
	state := map[string]int{"a": 1}
	// commit the seed so later captures are incremental
	cutSeed := tr.Begin()
	cutSeed.Seed(map[string]int{"a": 1})
	cutSeed.Merged()
	cutSeed.Commit()

	state["b"] = 2
	tr.Mark("b")
	if n := tr.AddEvents(5); n != 5 {
		t.Fatalf("countdown = %d, want 5", n)
	}

	// Publish fails: abort after merging (the publish-failure shape).
	cut := tr.Begin()
	for k := range cut.Dirty() {
		v, ok := state[k]
		cut.Resolve(k, v, ok)
	}
	cut.Merged()
	cut.Abort()

	if n := tr.Events(); n != 5 {
		t.Fatalf("countdown after abort = %d, want 5 (retry must fire)", n)
	}
	retry := tr.Begin()
	if _, ok := retry.Dirty()["b"]; !ok {
		t.Fatalf("dirty after abort = %v, want b restored", retry.Dirty())
	}
	for k := range retry.Dirty() {
		v, ok := state[k]
		retry.Resolve(k, v, ok)
	}
	wantEntries(t, retry.Merged(), map[string]int{"a": 1, "b": 2})
	retry.Commit()
	if n := tr.Events(); n != 0 {
		t.Fatalf("countdown after commit = %d, want 0", n)
	}
}

// TestCaptureAbortBeforeMerge covers the capture-error shape: abort
// before Merged leaves the baseline untouched and restores the dirty
// keys.
func TestCaptureAbortBeforeMerge(t *testing.T) {
	tr := &Tracker[string, int]{}
	seed := tr.Begin()
	seed.Seed(map[string]int{"a": 1})
	seed.Merged()
	seed.Commit()

	tr.Mark("a")
	cut := tr.Begin()
	cut.Abort() // e.g. an invariant check failed mid-resolve

	retry := tr.Begin()
	if _, ok := retry.Dirty()["a"]; !ok {
		t.Fatalf("dirty after pre-merge abort = %v, want a restored", retry.Dirty())
	}
	retry.Resolve("a", 7, true)
	wantEntries(t, retry.Merged(), map[string]int{"a": 7})
}

// TestCaptureCountdownCarriesEventsDuringPublish: events recorded after
// the cut (mutators run while the publish writes) survive the commit
// and count toward the next snapshot.
func TestCaptureCountdownCarriesEventsDuringPublish(t *testing.T) {
	tr := &Tracker[string, int]{}
	tr.AddEvents(10)
	cut := tr.Begin()
	cut.Seed(map[string]int{})
	cut.Merged()
	tr.AddEvents(3) // arrives while the publish is in flight
	cut.Commit()
	if n := tr.Events(); n != 3 {
		t.Fatalf("countdown after commit = %d, want 3 carried over", n)
	}
}

// TestCaptureMarkRace exercises Mark/AddEvents against Begin/Commit
// under the race detector.
func TestCaptureMarkRace(t *testing.T) {
	tr := &Tracker[int, int]{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Mark(i % 64)
			tr.AddEvents(1)
		}
	}()
	for round := 0; round < 50; round++ {
		cut := tr.Begin()
		if cut.Full() {
			cut.Seed(map[int]int{})
		} else {
			for k := range cut.Dirty() {
				cut.Resolve(k, k, true)
			}
		}
		cut.Merged()
		if round%2 == 0 {
			cut.Commit()
		} else {
			cut.Abort()
		}
	}
	close(stop)
	wg.Wait()
}
