package seglog

import "sync"

// Incremental snapshot capture. The three stores used to clone their
// full index/state under an exclusive lock on every snapshot, so the
// stop-the-world pause scaled with blob/page/key count no matter how
// little had changed since the last snapshot. A Tracker turns that into
// a diff: mutators mark the keys they touch, and a capture resolves
// only the marked keys against current state, merging them over the
// entries of the last published snapshot. The first capture (and any
// store that wants a safety net) still runs the full scan as the seed.
//
// The Tracker also owns the auto-snapshot countdown. The stores used to
// zero their event counters inside capture — before the snapshot was
// published — so a failed publish (ENOSPC, transient IO error) left the
// tail uncovered for another full SnapshotEvery events with no retry.
// Here the countdown is consumed only by Capture.Commit, which the
// store calls after a successful publish; Abort leaves it intact, so
// the next maintenance pass retries immediately. Keeping that rule in
// one shared place is what stops it regressing per-store.
//
// Protocol, per capture, with the store's exclusive cut lock held:
//
//	cut := tracker.Begin()
//	if cut.Full()  { cut.Seed(fullClone) }
//	else           { for k := range cut.Dirty() { cut.Resolve(k, v, live) } }
//	// release the cut lock — the merge is O(total) map work but needs
//	// no store locks
//	entries := cut.Merged()
//	publish(entries) == nil ? cut.Commit() : cut.Abort()
//
// Captures are serialized by the store's maintenance lock; only Mark
// and AddEvents race with them.

// Tracker accumulates the dirty set and the event countdown between
// snapshot captures of one store. The zero value is ready to use; the
// first capture is always full (no published baseline exists).
type Tracker[K comparable, V any] struct {
	mu    sync.Mutex
	dirty map[K]struct{}
	// prev holds the entries of the last published snapshot. It is
	// mutated in place by Capture.Merged: even if the publish then
	// fails, prev is exactly the state at that capture's cut, and every
	// key changed after the cut is marked dirty as usual, so the next
	// capture is still correct.
	prev   map[K]V
	events uint64
}

// Mark records that k's entry changed (insert, update, delete or
// retarget) since the last capture began. Callers hold whatever store
// lock orders their mutation; the Tracker has its own mutex, so any
// context may call it.
func (t *Tracker[K, V]) Mark(k K) {
	t.mu.Lock()
	if t.dirty == nil {
		t.dirty = make(map[K]struct{})
	}
	t.dirty[k] = struct{}{}
	t.mu.Unlock()
}

// AddEvents advances the auto-snapshot countdown by n and returns the
// new total, for the store's SnapshotEvery threshold check.
func (t *Tracker[K, V]) AddEvents(n int) uint64 {
	t.mu.Lock()
	t.events += uint64(n)
	v := t.events
	t.mu.Unlock()
	return v
}

// Events reports the countdown: events recorded since the last
// successfully published capture.
func (t *Tracker[K, V]) Events() uint64 {
	t.mu.Lock()
	v := t.events
	t.mu.Unlock()
	return v
}

// Begin opens a capture at the current cut, taking ownership of the
// dirty set accumulated so far. The caller must hold the store lock
// that excludes mutators for the duration of the Resolve/Seed phase.
func (t *Tracker[K, V]) Begin() *Capture[K, V] {
	t.mu.Lock()
	cut := &Capture[K, V]{t: t, dirty: t.dirty, events: t.events, full: t.prev == nil}
	t.dirty = nil
	t.mu.Unlock()
	if !cut.full {
		cut.upd = make(map[K]V, len(cut.dirty))
		cut.del = make(map[K]struct{})
	}
	return cut
}

// Capture is one in-flight snapshot capture. Not safe for concurrent
// use; the store's maintenance pass drives it single-threaded.
type Capture[K comparable, V any] struct {
	t      *Tracker[K, V]
	full   bool
	dirty  map[K]struct{}
	events uint64
	upd    map[K]V
	del    map[K]struct{}
	seeded map[K]V
	merged map[K]V
}

// Full reports whether this capture must seed from a full scan — no
// published baseline exists yet.
func (c *Capture[K, V]) Full() bool { return c.full }

// Dirty is the set of keys the store must Resolve (nil for a full
// capture). The capture owns the map; the store only ranges over it.
func (c *Capture[K, V]) Dirty() map[K]struct{} { return c.dirty }

// Resolve records k's current entry: v when live is true, a deletion
// otherwise. Incremental captures only.
func (c *Capture[K, V]) Resolve(k K, v V, live bool) {
	if live {
		c.upd[k] = v
	} else {
		c.del[k] = struct{}{}
	}
}

// Seed installs the full clone for a full capture.
func (c *Capture[K, V]) Seed(m map[K]V) { c.seeded = m }

// Merged returns the complete entry map at the cut: the seed for a
// full capture, or the previous snapshot's entries patched with the
// resolved dirty keys. The merge mutates the tracker's baseline in
// place (see Tracker.prev) and needs no store locks — call it after
// releasing the cut lock. Idempotent.
func (c *Capture[K, V]) Merged() map[K]V {
	if c.merged != nil {
		return c.merged
	}
	if c.full {
		c.merged = c.seeded
		if c.merged == nil {
			c.merged = map[K]V{}
		}
		return c.merged
	}
	m := c.t.prev
	for k := range c.del {
		delete(m, k)
	}
	for k, v := range c.upd {
		m[k] = v
	}
	c.merged = m
	return m
}

// Commit records a successful publish: the merged entries become the
// next capture's baseline and the countdown drops by the events this
// capture covered (events recorded since Begin carry over).
func (c *Capture[K, V]) Commit() {
	m := c.Merged()
	t := c.t
	t.mu.Lock()
	t.prev = m
	if t.events >= c.events {
		t.events -= c.events
	} else {
		t.events = 0
	}
	t.mu.Unlock()
}

// Abort records a failed capture or publish: the dirty keys return to
// the tracker so the next capture re-resolves them, and the countdown
// is untouched — the next maintenance pass retries at once.
func (c *Capture[K, V]) Abort() {
	if len(c.dirty) == 0 {
		return
	}
	t := c.t
	t.mu.Lock()
	if t.dirty == nil {
		t.dirty = make(map[K]struct{}, len(c.dirty))
	}
	for k := range c.dirty {
		t.dirty[k] = struct{}{}
	}
	t.mu.Unlock()
}
