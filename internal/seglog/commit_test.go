package seglog

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// testAppend is the minimal Parked implementation.
type testAppend struct {
	rec  string
	cell Cell
}

func (a *testAppend) Cell() *Cell { return &a.cell }

// testStore wires a Committer to counters instead of a disk.
type testStore struct {
	mu      sync.Mutex
	closed  bool
	commits atomic.Uint64 // batches committed (≈ fsyncs)
	records atomic.Uint64 // records committed
	applied atomic.Uint64 // records applied
	comm    Committer[*testAppend]
}

var errTestClosed = errors.New("test store closed")

func newTestStore(serial bool) *testStore {
	s := &testStore{}
	s.comm = Committer[*testAppend]{
		Mu:        &s.mu,
		Serial:    serial,
		Closed:    func() bool { return s.closed },
		ErrClosed: errTestClosed,
		Commit: func(batch []*testAppend) error {
			s.commits.Add(1)
			s.records.Add(uint64(len(batch)))
			return nil
		},
		Apply: func(batch []*testAppend) { s.applied.Add(uint64(len(batch))) },
	}
	return s
}

func (s *testStore) append(rec string) error {
	return s.comm.Append(&testAppend{rec: rec, cell: NewCell()})
}

// TestGroupCommitBatches pins the deterministic mechanics: with a leader
// marked active, concurrent appends queue, and one caretaker pass
// commits them all as a single batch.
func TestGroupCommitBatches(t *testing.T) {
	s := newTestStore(false)
	s.mu.Lock()
	s.comm.SetLeadingLocked(true)
	s.mu.Unlock()

	const n = 5
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == n {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	if err := s.comm.CaretakeLocked(); err != nil {
		t.Fatalf("caretake: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("batched append: %v", err)
		}
	}
	if c, r, a := s.commits.Load(), s.records.Load(), s.applied.Load(); c != 1 || r != n || a != n {
		t.Fatalf("commits=%d records=%d applied=%d, want 1/%d/%d", c, r, a, n, n)
	}
}

// TestGroupCommitConcurrent hammers the natural protocol — leadership
// election, one-batch tenure, promotion — under the race detector, and
// checks no record is lost or double-committed.
func TestGroupCommitConcurrent(t *testing.T) {
	s := newTestStore(false)
	const workers, each = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.append("r"); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r, a := s.records.Load(), s.applied.Load(); r != workers*each || a != workers*each {
		t.Fatalf("committed %d, applied %d, want %d", r, a, workers*each)
	}
	if c := s.commits.Load(); c > workers*each {
		t.Fatalf("commits=%d exceeds records — a batch committed twice", c)
	}
}

// TestSerialCommitsPerRecord pins the ablation baseline: one commit per
// record, no batching.
func TestSerialCommitsPerRecord(t *testing.T) {
	s := newTestStore(true)
	for i := 0; i < 10; i++ {
		if err := s.append("r"); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.commits.Load(); c != 10 {
		t.Fatalf("serial commits = %d, want 10", c)
	}
}

// TestCloseFailsQueuedAppends checks shutdown while appends are parked
// behind a leader: queued-but-untaken records fail with the store's
// error, and later appends fail fast.
func TestCloseFailsQueuedAppends(t *testing.T) {
	s := newTestStore(false)
	s.mu.Lock()
	s.comm.SetLeadingLocked(true) // no real leader will ever drain
	s.mu.Unlock()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == 2 {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	s.closed = true
	s.comm.FailQueuedLocked(errTestClosed)
	s.mu.Unlock()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, errTestClosed) {
			t.Fatalf("append parked at close: %v, want %v", err, errTestClosed)
		}
	}
	if err := s.append("late"); !errors.Is(err, errTestClosed) {
		t.Fatalf("append after close: %v, want %v", err, errTestClosed)
	}
	if r := s.records.Load(); r != 0 {
		t.Fatalf("%d records committed through a closed store", r)
	}
}

// TestTwoPhaseAppendBatches: records enqueued before any Await commit
// as one batch when the designated leader finally parks, and every
// Await observes the outcome.
func TestTwoPhaseAppendBatches(t *testing.T) {
	s := newTestStore(false)
	s.comm.Apply = nil // two-phase stores apply at enqueue time
	const n = 4
	recs := make([]*testAppend, n)
	for i := range recs {
		recs[i] = &testAppend{rec: "r", cell: NewCell()}
		if err := s.comm.Enqueue(recs[i]); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	s.mu.Lock()
	if q := s.comm.QueueLenLocked(); q != n {
		t.Fatalf("queued = %d, want %d", q, n)
	}
	s.mu.Unlock()
	if s.commits.Load() != 0 {
		t.Fatal("commit ran before any Await")
	}
	for i := range recs {
		if err := s.comm.Await(recs[i]); err != nil {
			t.Fatalf("await %d: %v", i, err)
		}
	}
	if c, r := s.commits.Load(), s.records.Load(); c != 1 || r != n {
		t.Fatalf("commits=%d records=%d, want 1/%d — the batch must share one fsync", c, r, n)
	}
}

// TestTwoPhaseSerialCommitsPerRecord: on a serial committer the
// enqueue/await path still commits one write per record (the ablation
// baseline) in enqueue order.
func TestTwoPhaseSerialCommitsPerRecord(t *testing.T) {
	s := newTestStore(true)
	s.comm.Apply = nil
	const n = 6
	recs := make([]*testAppend, n)
	for i := range recs {
		recs[i] = &testAppend{rec: "r", cell: NewCell()}
		if err := s.comm.Enqueue(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range recs {
		if err := s.comm.Await(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.commits.Load(); c != n {
		t.Fatalf("serial two-phase commits = %d, want %d", c, n)
	}
}

// TestTwoPhaseFailStopWedges: after one commit failure a fail-stop
// committer fails the whole batch and every later enqueue, so the
// durable log stays a prefix of the enqueue order.
func TestTwoPhaseFailStopWedges(t *testing.T) {
	s := newTestStore(false)
	s.comm.Apply = nil
	s.comm.FailStop = true
	errDisk := errors.New("disk gone")
	s.comm.Commit = func(batch []*testAppend) error { return errDisk }

	a := &testAppend{rec: "r", cell: NewCell()}
	if err := s.comm.Enqueue(a); err != nil {
		t.Fatal(err)
	}
	if err := s.comm.Await(a); !errors.Is(err, errDisk) {
		t.Fatalf("await: %v, want %v", err, errDisk)
	}
	if err := s.comm.Enqueue(&testAppend{rec: "r", cell: NewCell()}); !errors.Is(err, errDisk) {
		t.Fatalf("enqueue after wedge: %v, want %v", err, errDisk)
	}
	if err := s.append("r"); !errors.Is(err, errDisk) {
		t.Fatalf("append after wedge: %v, want %v", err, errDisk)
	}
}

// TestTwoPhaseCloseBeforeAwait: shutdown between Enqueue and Await
// delivers the close error to the designated leader instead of letting
// it commit through a closed store.
func TestTwoPhaseCloseBeforeAwait(t *testing.T) {
	s := newTestStore(false)
	s.comm.Apply = nil
	a := &testAppend{rec: "r", cell: NewCell()}
	if err := s.comm.Enqueue(a); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.closed = true
	s.comm.FailQueuedLocked(errTestClosed)
	s.mu.Unlock()
	if err := s.comm.Await(a); !errors.Is(err, errTestClosed) {
		t.Fatalf("await after close: %v, want %v", err, errTestClosed)
	}
	if r := s.records.Load(); r != 0 {
		t.Fatalf("%d records committed through a closed store", r)
	}
}

// TestQuiesceWaitsForPending: QuiesceLocked returns only once every
// enqueued record has resolved, including batches taken but not yet
// durable.
func TestQuiesceWaitsForPending(t *testing.T) {
	s := newTestStore(false)
	s.comm.Apply = nil
	gate := make(chan struct{})
	s.comm.Commit = func(batch []*testAppend) error {
		s.commits.Add(1)
		s.records.Add(uint64(len(batch)))
		<-gate // a leader parked mid-fsync
		return nil
	}
	a := &testAppend{rec: "r", cell: NewCell()}
	if err := s.comm.Enqueue(a); err != nil {
		t.Fatal(err)
	}
	awaitDone := make(chan error, 1)
	go func() { awaitDone <- s.comm.Await(a) }()
	for s.commits.Load() == 0 {
		runtime.Gosched() // leader is inside Commit now
	}
	quiesced := make(chan struct{})
	go func() {
		s.mu.Lock()
		s.comm.QuiesceLocked()
		s.mu.Unlock()
		close(quiesced)
	}()
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	select {
	case <-quiesced:
		t.Fatal("quiesce returned while a batch was in flight")
	default:
	}
	close(gate)
	<-quiesced
	if err := <-awaitDone; err != nil {
		t.Fatal(err)
	}
}

// TestTwoPhaseStress hammers Enqueue/Await from many goroutines mixed
// with one-phase appends under the race detector.
func TestTwoPhaseStress(t *testing.T) {
	s := newTestStore(false)
	const workers, each = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if w%2 == 0 {
					a := &testAppend{rec: "r", cell: NewCell()}
					if err := s.comm.Enqueue(a); err != nil {
						t.Errorf("enqueue: %v", err)
						return
					}
					if err := s.comm.Await(a); err != nil {
						t.Errorf("await: %v", err)
						return
					}
				} else if err := s.append("r"); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r := s.records.Load(); r != workers*each {
		t.Fatalf("committed %d, want %d", r, workers*each)
	}
}

// TestCommitErrorPropagatesToWholeBatch: a failed batch fails every
// appender in it and applies nothing.
func TestCommitErrorPropagatesToWholeBatch(t *testing.T) {
	s := newTestStore(false)
	errDisk := errors.New("disk gone")
	s.comm.Commit = func(batch []*testAppend) error { return errDisk }
	s.mu.Lock()
	s.comm.SetLeadingLocked(true)
	s.mu.Unlock()
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == 3 {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	if err := s.comm.CaretakeLocked(); !errors.Is(err, errDisk) {
		t.Fatalf("caretake: %v, want %v", err, errDisk)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, errDisk) {
			t.Fatalf("batched append: %v, want %v", err, errDisk)
		}
	}
	if a := s.applied.Load(); a != 0 {
		t.Fatalf("%d records applied from a failed batch", a)
	}
}
