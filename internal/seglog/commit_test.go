package seglog

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// testAppend is the minimal Parked implementation.
type testAppend struct {
	rec  string
	cell Cell
}

func (a *testAppend) Cell() *Cell { return &a.cell }

// testStore wires a Committer to counters instead of a disk.
type testStore struct {
	mu      sync.Mutex
	closed  bool
	commits atomic.Uint64 // batches committed (≈ fsyncs)
	records atomic.Uint64 // records committed
	applied atomic.Uint64 // records applied
	comm    Committer[*testAppend]
}

var errTestClosed = errors.New("test store closed")

func newTestStore(serial bool) *testStore {
	s := &testStore{}
	s.comm = Committer[*testAppend]{
		Mu:        &s.mu,
		Serial:    serial,
		Closed:    func() bool { return s.closed },
		ErrClosed: errTestClosed,
		Commit: func(batch []*testAppend) error {
			s.commits.Add(1)
			s.records.Add(uint64(len(batch)))
			return nil
		},
		Apply: func(batch []*testAppend) { s.applied.Add(uint64(len(batch))) },
	}
	return s
}

func (s *testStore) append(rec string) error {
	return s.comm.Append(&testAppend{rec: rec, cell: NewCell()})
}

// TestGroupCommitBatches pins the deterministic mechanics: with a leader
// marked active, concurrent appends queue, and one caretaker pass
// commits them all as a single batch.
func TestGroupCommitBatches(t *testing.T) {
	s := newTestStore(false)
	s.mu.Lock()
	s.comm.SetLeadingLocked(true)
	s.mu.Unlock()

	const n = 5
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == n {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	if err := s.comm.CaretakeLocked(); err != nil {
		t.Fatalf("caretake: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("batched append: %v", err)
		}
	}
	if c, r, a := s.commits.Load(), s.records.Load(), s.applied.Load(); c != 1 || r != n || a != n {
		t.Fatalf("commits=%d records=%d applied=%d, want 1/%d/%d", c, r, a, n, n)
	}
}

// TestGroupCommitConcurrent hammers the natural protocol — leadership
// election, one-batch tenure, promotion — under the race detector, and
// checks no record is lost or double-committed.
func TestGroupCommitConcurrent(t *testing.T) {
	s := newTestStore(false)
	const workers, each = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.append("r"); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r, a := s.records.Load(), s.applied.Load(); r != workers*each || a != workers*each {
		t.Fatalf("committed %d, applied %d, want %d", r, a, workers*each)
	}
	if c := s.commits.Load(); c > workers*each {
		t.Fatalf("commits=%d exceeds records — a batch committed twice", c)
	}
}

// TestSerialCommitsPerRecord pins the ablation baseline: one commit per
// record, no batching.
func TestSerialCommitsPerRecord(t *testing.T) {
	s := newTestStore(true)
	for i := 0; i < 10; i++ {
		if err := s.append("r"); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.commits.Load(); c != 10 {
		t.Fatalf("serial commits = %d, want 10", c)
	}
}

// TestCloseFailsQueuedAppends checks shutdown while appends are parked
// behind a leader: queued-but-untaken records fail with the store's
// error, and later appends fail fast.
func TestCloseFailsQueuedAppends(t *testing.T) {
	s := newTestStore(false)
	s.mu.Lock()
	s.comm.SetLeadingLocked(true) // no real leader will ever drain
	s.mu.Unlock()
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == 2 {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	s.closed = true
	s.comm.FailQueuedLocked(errTestClosed)
	s.mu.Unlock()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, errTestClosed) {
			t.Fatalf("append parked at close: %v, want %v", err, errTestClosed)
		}
	}
	if err := s.append("late"); !errors.Is(err, errTestClosed) {
		t.Fatalf("append after close: %v, want %v", err, errTestClosed)
	}
	if r := s.records.Load(); r != 0 {
		t.Fatalf("%d records committed through a closed store", r)
	}
}

// TestCommitErrorPropagatesToWholeBatch: a failed batch fails every
// appender in it and applies nothing.
func TestCommitErrorPropagatesToWholeBatch(t *testing.T) {
	s := newTestStore(false)
	errDisk := errors.New("disk gone")
	s.comm.Commit = func(batch []*testAppend) error { return errDisk }
	s.mu.Lock()
	s.comm.SetLeadingLocked(true)
	s.mu.Unlock()
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- s.append("r") }()
	}
	for {
		s.mu.Lock()
		queued := s.comm.QueueLenLocked()
		s.mu.Unlock()
		if queued == 3 {
			break
		}
		runtime.Gosched()
	}
	s.mu.Lock()
	if err := s.comm.CaretakeLocked(); !errors.Is(err, errDisk) {
		t.Fatalf("caretake: %v, want %v", err, errDisk)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, errDisk) {
			t.Fatalf("batched append: %v, want %v", err, errDisk)
		}
	}
	if a := s.applied.Load(); a != 0 {
		t.Fatalf("%d records applied from a failed batch", a)
	}
}
