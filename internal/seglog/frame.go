package seglog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Record frame (little-endian), shared by every store:
//
//	uint32 RecMagic | uint32 payloadLen | uint32 crc32(payload) | payload
//
// The payload encoding is the store's business; this file only frames,
// walks and truncates.

// Frame wraps an encoded payload in the on-disk frame.
func (ft *Format) Frame(payload []byte) []byte {
	rec := make([]byte, FrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], ft.RecMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.ChecksumIEEE(payload))
	copy(rec[FrameHeaderSize:], payload)
	return rec
}

// Scan reads every record frame in one segment file, already open (and,
// for header-carrying formats, already validated). visit receives each
// CRC-checked payload and its file offset. A torn frame at the tail is
// truncated away when allowTorn is set (the highest segment — a crash
// mid-append); anywhere else it fails the open, because sealed segments
// and compaction outputs are only ever activated complete. The file
// size after any truncation is returned.
//
//blobseer:seglog scan-segment
func (ft *Format) Scan(f *os.File, path string, allowTorn bool, visit func(payload []byte, payloadOff int64) error) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("%s: stat segment: %w", ft.Name, err)
	}
	logLen := info.Size()
	off := ft.DataStart()
	var hdr [FrameHeaderSize]byte
	for off < logLen {
		if logLen-off < FrameHeaderSize {
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("%s: read record header at %d: %w", ft.Name, off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != ft.RecMagic {
			return 0, fmt.Errorf("%s: bad record magic in %s at offset %d: log corrupted", ft.Name, path, off)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
		wantCRC := binary.LittleEndian.Uint32(hdr[8:12])
		payloadOff := off + FrameHeaderSize
		if payloadOff+int64(payloadLen) > logLen {
			break // torn payload
		}
		payload := make([]byte, payloadLen)
		if _, err := f.ReadAt(payload, payloadOff); err != nil {
			return 0, fmt.Errorf("%s: read record payload at %d: %w", ft.Name, payloadOff, err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return 0, fmt.Errorf("%s: record crc mismatch in %s at offset %d: log corrupted", ft.Name, path, off)
		}
		if err := visit(payload, payloadOff); err != nil {
			return 0, err
		}
		off = payloadOff + int64(payloadLen)
	}
	if off < logLen {
		if !allowTorn {
			return 0, fmt.Errorf("%s: torn record in sealed segment %s: log corrupted", ft.Name, path)
		}
		if err := f.Truncate(off); err != nil {
			return 0, fmt.Errorf("%s: truncate torn tail: %w", ft.Name, err)
		}
	}
	return off, nil
}

// ScanPrefix walks a sealed segment reading only the first prefixLen
// payload bytes of each record — enough for a kind byte and a key —
// without the payload CRC check (the full bytes are not read). It
// exists for the compactor's tombstone-hygiene sweep, where earlier
// segments are consulted for key presence only and reading every page
// body would make the sweep cost the whole store. A torn frame fails:
// sealed segments are complete by invariant.
func (ft *Format) ScanPrefix(f *os.File, path string, prefixLen int, visit func(prefix []byte, payloadLen uint32) error) error {
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("%s: stat segment: %w", ft.Name, err)
	}
	logLen := info.Size()
	off := ft.DataStart()
	var hdr [FrameHeaderSize]byte
	buf := make([]byte, prefixLen)
	for off < logLen {
		if logLen-off < FrameHeaderSize {
			return fmt.Errorf("%s: torn record in sealed segment %s: log corrupted", ft.Name, path)
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return fmt.Errorf("%s: read record header at %d: %w", ft.Name, off, err)
		}
		if binary.LittleEndian.Uint32(hdr[0:4]) != ft.RecMagic {
			return fmt.Errorf("%s: bad record magic in %s at offset %d: log corrupted", ft.Name, path, off)
		}
		payloadLen := binary.LittleEndian.Uint32(hdr[4:8])
		payloadOff := off + FrameHeaderSize
		if payloadOff+int64(payloadLen) > logLen {
			return fmt.Errorf("%s: torn record in sealed segment %s: log corrupted", ft.Name, path)
		}
		n := prefixLen
		if int64(n) > int64(payloadLen) {
			n = int(payloadLen)
		}
		if n > 0 {
			if _, err := f.ReadAt(buf[:n], payloadOff); err != nil {
				return fmt.Errorf("%s: read record prefix at %d: %w", ft.Name, payloadOff, err)
			}
		}
		if err := visit(buf[:n], payloadLen); err != nil {
			return err
		}
		off = payloadOff + int64(payloadLen)
	}
	return nil
}
