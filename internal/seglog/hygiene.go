package seglog

// Generational tombstone hygiene: when can a compactor drop a tombstone
// instead of carrying it forever?
//
// A tombstone in segment S exists to stop records in OTHER segments
// from resurrecting its key: recovery replays segments in index order
// (the chronological write order) and a full rescan would re-index any
// surviving put it meets before the tombstone's segment... and keys are
// never reused after deletion (page ids carry random bytes and are
// minted once; DHT keys are version-scoped tree-node names and versions
// only grow), so no put for the key can ever land in a segment after S.
// Therefore the tombstone in S is load-bearing exactly while some
// segment strictly below S still holds a put record for its key — live
// or dead, indexed or duplicate: any of them would resurrect the key on
// a rescan if the tombstone vanished. Puts inside S itself never
// matter: they are dead by construction (the tombstone killed them) and
// every rewrite of S drops dead puts in the same pass.
//
// So the rule the shared compactors implement is:
//
//	drop a tombstone during the rewrite of S iff no segment < S
//	contains a put record for its key
//
// and the cascade that makes churned logs converge: when a rewrite of
// an EARLIER segment drops a dead put, tombstones above it may have
// just become droppable — the store flags later tombstone-bearing
// segments for hygiene, the victim picker selects flagged segments even
// when their byte-reclaim estimate is zero, and their rewrite re-runs
// the rule and clears the flag. Each flag is set only when a record was
// actually dropped, so the cascade terminates, and a full compaction
// pass converges the log to exactly its live set.

// FilterTombs resolves the rule for one victim: tombs is the set of
// tombstone keys found in the victim, and scan must walk every segment
// strictly below it, calling observe for each put record's key. observe
// returns false once every tombstone is known to be needed, letting the
// scan stop early. The returned set holds the tombstones that must be
// preserved; the rest are droppable.
func FilterTombs[K comparable](tombs map[K]bool, scan func(observe func(key K) bool) error) (map[K]bool, error) {
	needed := make(map[K]bool, len(tombs))
	if len(tombs) == 0 {
		return needed, nil
	}
	err := scan(func(key K) bool {
		if tombs[key] {
			needed[key] = true
		}
		return len(needed) < len(tombs)
	})
	return needed, err
}
