package seglog

import "sync"

// Maintainer runs a store's background maintenance (snapshots,
// compaction, checkpoints) as a plain goroutine — maintenance is disk
// work with no simulated-time component. Nudges coalesce: at most one
// is ever pending. Errors inside the pass are not fatal — the log
// simply keeps growing until the next trigger succeeds.
type Maintainer struct {
	c    chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup // plain sync: the loop never blocks in virtual time
	pass func() bool    // one maintenance pass; false stops the loop
}

// NewMaintainer returns a stopped maintainer; Start launches the loop.
// pass runs once per nudge and returns false to stop the loop (the
// store observed shutdown).
func NewMaintainer(pass func() bool) *Maintainer {
	return &Maintainer{
		c:    make(chan struct{}, 1),
		quit: make(chan struct{}),
		pass: pass,
	}
}

// Start launches the maintenance goroutine, which Stop joins.
//
//blobseer:seglog maintain-loop
func (m *Maintainer) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			select {
			case <-m.quit:
				return
			case <-m.c:
				if !m.pass() {
					return
				}
			}
		}
	}()
}

// Nudge wakes the maintainer (no-op when none runs, or when a nudge is
// already pending).
func (m *Maintainer) Nudge() {
	if m == nil {
		return
	}
	select {
	case m.c <- struct{}{}:
	default:
	}
}

// Stop ends the loop and waits for any in-flight pass to finish, so
// after Stop returns no maintenance touches the store. Nil-safe;
// idempotent is the caller's problem: stores call it exactly once from
// Close, guarded by their closed flag. Callers must not hold a lock the
// pass acquires, or the join deadlocks.
func (m *Maintainer) Stop() {
	if m == nil {
		return
	}
	close(m.quit)
	m.wg.Wait()
}
