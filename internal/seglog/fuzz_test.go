package seglog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"blobseer/internal/wire"
)

// The shared codecs face bytes from disk, where a crash or disk fault
// can produce anything. The targets pin the same two properties every
// store's decoders pin: never panic on arbitrary input, and — because
// the encodings are canonical — a successful decode re-encodes to
// exactly the consumed input.

var errFuzzTag = errors.New("seglog: invalid fuzz encoding")

func FuzzDecodeIndexMeta(f *testing.F) {
	seed := func(m *IndexMeta) []byte {
		w := wire.NewWriter(64)
		EncodeIndexMeta(w, 1, 2, m)
		return w.Bytes()
	}
	f.Add(seed(&IndexMeta{}))
	f.Add(seed(&IndexMeta{Segs: []SegMeta{{Gen: 1}, {Gen: 7}, {Gen: 3}}}))
	f.Add(seed(&IndexMeta{HasMeta: true, Segs: []SegMeta{
		{Gen: 1, Live: 211, Tomb: 42},
		{Gen: 2},
		{Gen: 9, Live: 0, Tomb: 63},
	}}))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{2, 0, 0, 0})
	f.Add([]byte{3, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		m, err := DecodeIndexMeta(r, 1, 2, errFuzzTag)
		if err != nil || r.Err() != nil {
			return
		}
		consumed := data[:len(data)-r.Remaining()]
		if enc := seed(m); !bytes.Equal(enc, consumed) {
			t.Fatalf("decode of %x re-encodes to %x", consumed, enc)
		}
		// v2 counters are validated non-negative on the way in.
		for _, s := range m.Segs {
			if s.Live < 0 || s.Tomb < 0 {
				t.Fatalf("decoded negative counter: %+v", s)
			}
		}
	})
}

// FuzzScan throws arbitrary file contents at the frame walker (as the
// highest, torn-tolerant segment) and pins: no panic, and whatever
// survives the truncating scan is a sealed-clean segment — a second,
// strict scan visits exactly the same payloads.
func FuzzScan(f *testing.F) {
	valid := append(testWALFmt.Frame([]byte("ev-1")), testWALFmt.Frame([]byte("ev-2"))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0xDE, 0xC0, 0x57, 0x7E, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "seg.000001")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fh, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer fh.Close()
		var first [][]byte
		end, err := testWALFmt.Scan(fh, path, true, func(p []byte, _ int64) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			return // corrupt, rejected — fine
		}
		var second [][]byte
		end2, err := testWALFmt.Scan(fh, path, false, func(p []byte, _ int64) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("segment sealed by truncating scan fails strict rescan: %v", err)
		}
		if end != end2 || len(first) != len(second) {
			t.Fatalf("rescan disagrees: %d/%d records, end %d/%d", len(first), len(second), end, end2)
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs across rescans", i)
			}
		}
	})
}
