package seglog

import (
	"fmt"

	"blobseer/internal/wire"
)

// Index snapshots (the page store's and the DHT log's) open with a
// shared prefix: the format number and one entry per covered segment.
// Format v1 recorded only each covered segment's generation; v2 adds
// its live/tombstone byte counters:
//
//	uint32 fmt
//	uint32 nsegs
//	per segment: uint64 gen                          (v1)
//	             uint64 gen | uint64 live | uint64 tomb  (v2)
//
// v2 exists to fix a long-documented undercount: v1 snapshots carry
// only the live index, so a snapshot-seeded recovery had no way to
// recount tombstone bytes in covered segments and seeded tombBytes = 0.
// The undercount could only inflate the reclaim estimate — worst case
// one no-op rewrite of a tombstone-heavy segment per reopen — but with
// the counters persisted, recovery seeds the exact values and the
// compactor's victim selection stays accurate across reopens. Decoding
// preserves the input's format (HasMeta) and encoding reproduces it, so
// both formats round-trip canonically; a v1 snapshot loads fine and
// merely degrades to the old recompute-on-rewrite behaviour.

// SegMeta is one covered segment's entry in an index snapshot.
type SegMeta struct {
	Gen  uint64
	Live int64 // framed bytes of records the index points at (v2)
	Tomb int64 // framed bytes of tombstone records (v2)
}

// IndexMeta is the decoded shared prefix of an index snapshot.
type IndexMeta struct {
	HasMeta bool // true for v2: Live/Tomb are meaningful
	Segs    []SegMeta
}

// EncodeIndexMeta appends the shared prefix to w, as v2 when m.HasMeta.
func EncodeIndexMeta(w *wire.Writer, fmtV1, fmtV2 uint32, m *IndexMeta) {
	if m.HasMeta {
		w.Uint32(fmtV2)
	} else {
		w.Uint32(fmtV1)
	}
	w.Uint32(uint32(len(m.Segs)))
	for _, s := range m.Segs {
		w.Uint64(s.Gen)
		if m.HasMeta {
			w.Uint64(uint64(s.Live))
			w.Uint64(uint64(s.Tomb))
		}
	}
}

// DecodeIndexMeta parses the shared prefix from r, leaving r positioned
// at the store-specific entry section. errTag tags structural errors
// (each store wraps its own sentinel).
func DecodeIndexMeta(r *wire.Reader, fmtV1, fmtV2 uint32, errTag error) (*IndexMeta, error) {
	f := r.Uint32()
	if r.Err() == nil && f != fmtV1 && f != fmtV2 {
		return nil, fmt.Errorf("%w: unknown format %d", errTag, f)
	}
	m := &IndexMeta{HasMeta: f == fmtV2}
	elem := 8
	if m.HasMeta {
		elem = 24
	}
	nsegs, err := Count(r, elem, errTag)
	if err != nil {
		return nil, err
	}
	m.Segs = make([]SegMeta, 0, nsegs)
	for i := 0; i < nsegs; i++ {
		s := SegMeta{Gen: r.Uint64()}
		if m.HasMeta {
			s.Live = int64(r.Uint64())
			s.Tomb = int64(r.Uint64())
			if s.Live < 0 || s.Tomb < 0 {
				return nil, fmt.Errorf("%w: negative segment counter", errTag)
			}
		}
		m.Segs = append(m.Segs, s)
	}
	return m, nil
}

// Count reads a length prefix and bounds it by the bytes that many
// entries of at least elemBytes each would need, so a hostile prefix
// cannot drive a huge allocation.
func Count(r *wire.Reader, elemBytes int, errTag error) (int, error) {
	n := r.Uint32()
	if r.Err() != nil {
		return 0, r.Err()
	}
	if int64(n)*int64(elemBytes) > int64(r.Remaining()) {
		return 0, fmt.Errorf("%w: count %d exceeds remaining input", errTag, n)
	}
	return int(n), nil
}
