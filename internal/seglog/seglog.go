// Package seglog is the one segmented-log core behind the three durable
// stores: the version manager's WAL (internal/version), the page store's
// data log (internal/pagestore) and the DHT's metadata log
// (internal/dht). Each store keeps its own record encoding, index shape
// and locking, and parameterizes this package over the rest — the
// mechanics that used to be hand-copied three times:
//
//   - generation-stamped segment files (<base>.000001, ...) with a fixed
//     header, or headerless segments for WAL-style logs whose covered
//     segments are deleted instead of rewritten
//   - CRC-framed records with torn-tail truncation on the highest
//     segment only (a crash mid-append), and hard failure anywhere else
//     (sealed segments are only ever activated complete)
//   - snapshot files published by tmp + fsync + atomic rename + dirsync
//   - index snapshots that record each covered segment's generation —
//     and, since format v2, its live/tombstone byte counters — so
//     recovery detects post-snapshot compaction and seeds accurate
//     reclaim accounting (see indexsnap.go for the v2 story)
//   - leader/batch group commit with one-batch tenure and early lock
//     release: the leader runs the batch write+fsync with the store
//     mutex dropped, holding at most a store-supplied shared outer
//     lock, and appends split into enqueue/await so callers can apply
//     under their own locks at enqueue time and ack after durability
//     (commit.go)
//   - incremental snapshot capture: a dirty-set tracker whose captures
//     clone only what changed since the last *published* snapshot and
//     whose commit/abort protocol consumes the auto-snapshot countdown
//     only after a successful publish, so a failed publish retries on
//     the next maintenance pass (capture.go)
//   - in-place segment rewrite through a tmp file that is always
//     fsynced before the rename (writer.go)
//   - generational tombstone hygiene for compactors (hygiene.go)
//
// This package declares no lock order of its own: every lock it touches
// is owned and declared by the calling store (the Committer borrows the
// store's writer mutex). Functions that publish files via rename keep
// the whole sync→rename→dirsync sequence in a single function body so
// the renamesync analyzer (cmd/blobseer-vet) can see it.
package seglog

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// Format names one store's on-disk dialect: the magics that brand its
// files and the prefix its errors carry. A zero SegMagic means the
// store's segments are headerless (the version WAL): they start with
// records at offset 0 and carry no generation.
type Format struct {
	Name      string // error prefix, e.g. "pagestore"
	RecMagic  uint32 // record frame magic
	SegMagic  uint32 // segment header magic; 0 = headerless segments
	SegFormat uint32 // segment header format number
	SnapMagic uint32 // snapshot file envelope magic
}

const (
	// HeaderSize is the segment file header:
	//
	//	uint32 SegMagic | uint32 SegFormat | uint64 generation
	HeaderSize = 4 + 4 + 8

	// FrameHeaderSize is the record frame header:
	//
	//	uint32 RecMagic | uint32 payloadLen | uint32 crc32(payload)
	FrameHeaderSize = 4 + 4 + 4
)

// DataStart is the file offset of the first record: past the header for
// generation-stamped segments, 0 for headerless ones.
func (ft *Format) DataStart() int64 {
	if ft.SegMagic == 0 {
		return 0
	}
	return HeaderSize
}

// SegmentPath names segment idx of the log rooted at base.
func SegmentPath(base string, idx uint64) string {
	return fmt.Sprintf("%s.%06d", base, idx)
}

// SnapshotPath names the live snapshot of the log rooted at base.
func SnapshotPath(base string) string { return base + ".snapshot" }

// SnapshotTmpPath names the in-progress snapshot; never read by recovery.
func SnapshotTmpPath(base string) string { return base + ".snapshot.tmp" }

// CompactTmpPath names an in-progress segment rewrite; never read by
// recovery.
func CompactTmpPath(base string) string { return base + ".compact.tmp" }

// MigrateTmpPath names an in-progress legacy-log migration; never read
// by recovery.
func MigrateTmpPath(base string) string { return base + ".migrate.tmp" }

// RemoveTmp deletes leftover tmp files from interrupted maintenance.
// They are garbage by construction: only the atomic renames ever
// activate a tmp file.
func RemoveTmp(base string) {
	os.Remove(SnapshotTmpPath(base))
	os.Remove(CompactTmpPath(base))
	os.Remove(MigrateTmpPath(base))
}

// ListSegments returns the segment indices present for base, ascending.
// Non-numeric siblings (the snapshot, tmp files, a legacy log) are
// ignored.
func (ft *Format) ListSegments(base string) ([]uint64, error) {
	entries, err := os.ReadDir(filepath.Dir(base))
	if err != nil {
		return nil, fmt.Errorf("%s: list segments: %w", ft.Name, err)
	}
	prefix := filepath.Base(base) + "."
	var out []uint64
	for _, ent := range entries {
		name := ent.Name()
		if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		idx, err := strconv.ParseUint(name[len(prefix):], 10, 64)
		if err != nil || idx == 0 {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SyncDir fsyncs a directory so renames, creations and deletions in it
// are durable.
//
//blobseer:seglog sync-dir
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteHeader writes the segment header to a fresh segment file.
// Headerless formats must not call it.
func (ft *Format) WriteHeader(f *os.File, gen uint64) error {
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], ft.SegMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ft.SegFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], gen)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("%s: write segment header: %w", ft.Name, err)
	}
	return nil
}

// ReadHeader validates a segment file's header and returns its
// generation.
func (ft *Format) ReadHeader(f *os.File, path string) (uint64, error) {
	var hdr [HeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("%s: read segment header of %s: %w", ft.Name, path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != ft.SegMagic {
		return 0, fmt.Errorf("%s: bad segment magic in %s", ft.Name, path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != ft.SegFormat {
		return 0, fmt.Errorf("%s: unknown segment format %d in %s", ft.Name, v, path)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}
