package seglog

import (
	"runtime"
	"sync"
)

// Group commit, extracted verbatim from the version WAL and the page
// store (which had hand-copied it from each other): concurrent appends
// coalesce into batches, the first appender to find no active leader
// becomes one, takes everything queued with it, writes the whole batch
// with a single write and at most one fsync, and wakes the batch.
// Leadership lasts exactly one batch — anything queued behind the batch
// is handed to the first of those waiters — because appenders lead
// while holding store locks (a blob's shard, the page index cut), and
// an open-ended tenure would stall that lock behind other traffic.
// Appenders park until their batch is durable, so the write-ahead
// contract (state applies only after the record is on disk) holds while
// concurrent handlers share fsyncs.
//
// The Committer borrows the store's writer mutex rather than owning
// one, so the store keeps its declared lock order (and its direct uses
// of the mutex for rolls, captures and shutdown) unchanged.

// Cell is one queued appender's parking spot, embedded in the store's
// append-request type.
type Cell struct {
	done chan struct{}
	err  error
	// delivered guards done against double close; promoted tells the
	// woken waiter its record is NOT yet durable and it must lead the
	// next batch itself. Both are written under the writer mutex before
	// done is closed and read only after done fires.
	delivered bool
	promoted  bool
}

// NewCell returns a Cell ready to park on.
func NewCell() Cell { return Cell{done: make(chan struct{})} }

// Parked is implemented by the store's append-request type.
type Parked interface{ Cell() *Cell }

// Committer runs the leader/batch protocol over the store's request
// type T. All callback fields must be set before the first Append
// (MaybeRoll and Apply may be nil).
type Committer[T Parked] struct {
	// Mu is the store's writer mutex; it guards the queue and leader
	// flag here plus whatever writer state the store keeps (active
	// segment, sizes). The store declares its lock order.
	Mu *sync.Mutex
	// Serial disables group commit: one write (+fsync when the store
	// syncs) per record with Mu held throughout, so concurrent
	// appenders serialize on the disk — the ablation baseline.
	Serial bool
	// Closed reports shutdown; called with Mu held.
	Closed func() bool
	// ErrClosed is returned to appenders racing shutdown.
	ErrClosed error
	// Commit writes one batch contiguously to the active segment with a
	// single write and at most one fsync. Called by the exclusive
	// committer — the leader outside Mu, or a serial appender under it —
	// so the store's active-segment fields need no extra
	// synchronization: the segment cannot roll while a commit is in
	// flight. On error nothing may be applied.
	Commit func(batch []T) error
	// Apply, when set, applies a durable batch's state effects; called
	// with Mu held.
	Apply func(batch []T)
	// MaybeRoll, when set, is called with Mu held after a successful
	// commit+apply; the store rolls its active segment if oversized
	// (best effort — a failed roll leaves the oversized segment active).
	MaybeRoll func()

	queue   []T
	leading bool
}

// Append writes one record durably and applies its effects. Concurrent
// appends coalesce into group commits unless the committer is serial.
func (c *Committer[T]) Append(a T) error {
	c.Mu.Lock()
	if c.Closed() {
		c.Mu.Unlock()
		return c.ErrClosed
	}
	if c.Serial {
		err := c.Commit([]T{a})
		if err == nil {
			if c.Apply != nil {
				c.Apply([]T{a})
			}
			if c.MaybeRoll != nil {
				c.MaybeRoll()
			}
		}
		c.Mu.Unlock()
		return err
	}
	c.queue = append(c.queue, a)
	if !c.leading {
		c.leading = true
		return c.lead(a.Cell()) // releases Mu
	}
	c.Mu.Unlock()
	cell := a.Cell()
	<-cell.done
	if cell.promoted {
		c.Mu.Lock()
		return c.lead(cell) // releases Mu
	}
	return cell.err
}

// lead commits one batch — the current queue, which includes self's own
// record — delivers the outcome, and hands leadership to the first
// appender queued behind the batch. self is nil for a caretaker pass
// with no record of its own (tests). Called with Mu held; returns
// self's outcome with Mu released.
func (c *Committer[T]) lead(self *Cell) error {
	// Collect: yield once so appenders that are runnable right now —
	// typically the batch just delivered, already back with their next
	// record — join this batch instead of each eating an fsync. This is
	// what makes group commit form on a single core, where a leader
	// blocked in a short fsync syscall does not reliably give up its P
	// to the waiting appenders.
	c.Mu.Unlock()
	runtime.Gosched()
	c.Mu.Lock()
	batch := c.queue
	c.queue = nil
	closed := c.Closed()
	c.Mu.Unlock()
	var err error
	if closed {
		// Shutdown may already have drained the queue (batch can even be
		// empty, self's record included in the drain); every outcome
		// here is the same error, so the two drains cannot disagree.
		err = c.ErrClosed
	} else if len(batch) > 0 {
		err = c.Commit(batch)
	}
	c.Mu.Lock()
	if err == nil && len(batch) > 0 {
		if c.Apply != nil {
			c.Apply(batch)
		}
		if c.MaybeRoll != nil {
			c.MaybeRoll()
		}
	}
	for _, a := range batch {
		cell := a.Cell()
		if cell == self {
			// Self returns synchronously; its done channel may already
			// be closed when it led a batch it was promoted into.
			cell.delivered = true
			cell.err = err
		} else {
			deliverLocked(cell, err)
		}
	}
	if len(c.queue) > 0 && !c.Closed() {
		// One-batch tenure: whoever queued first behind this batch leads
		// the next one; its record stays queued and commits in that
		// batch.
		next := c.queue[0].Cell()
		next.promoted = true
		deliverLocked(next, nil)
	} else {
		c.leading = false
	}
	c.Mu.Unlock()
	return err
}

// deliverLocked wakes a parked appender exactly once. Called with the
// writer mutex held.
func deliverLocked(cell *Cell, err error) {
	if cell.delivered {
		return
	}
	cell.delivered = true
	cell.err = err
	close(cell.done)
}

// FailQueuedLocked delivers err to every queued appender and empties
// the queue; the store's shutdown calls it with Mu held. A promoted
// waiter was already woken and will observe closed when it leads;
// delivery skips it.
func (c *Committer[T]) FailQueuedLocked(err error) {
	for _, a := range c.queue {
		deliverLocked(a.Cell(), err)
	}
	c.queue = nil
}

// CaretakeLocked runs one leader pass with no record of its own — a
// test hook standing in for a returning leader. Called with Mu held;
// returns with Mu released.
func (c *Committer[T]) CaretakeLocked() error { return c.lead(nil) }

// SetLeadingLocked forces the leader flag — a test hook for pinning the
// queueing behaviour behind a leader mid-commit. Called with Mu held.
func (c *Committer[T]) SetLeadingLocked(v bool) { c.leading = v }

// QueueLenLocked reports the queued appender count. Called with Mu held.
func (c *Committer[T]) QueueLenLocked() int { return len(c.queue) }
