package seglog

import (
	"runtime"
	"sync"
)

// Group commit, extracted verbatim from the version WAL and the page
// store (which had hand-copied it from each other): concurrent appends
// coalesce into batches, the first appender to find no active leader
// becomes one, takes everything queued with it, writes the whole batch
// with a single write and at most one fsync, and wakes the batch.
// Leadership lasts exactly one batch — anything queued behind the batch
// is handed to the first of those waiters. Appenders park until their
// batch is durable, so the write-ahead contract (state applies only
// after the record is on disk) holds while concurrent handlers share
// fsyncs.
//
// Stores keep their outer locks out of the fsync two ways:
//
//   - Two-phase append (Enqueue + Await): the handler enqueues while
//     holding its store locks, releases them, and only then parks for
//     durability — so a blob's shard is free while the leader sits in
//     the fsync. The store applies state at enqueue time and
//     acknowledges after Await; FailStop keeps the durable log a prefix
//     of the enqueue order when a commit fails.
//   - The Outer callback: when state must apply only after the commit
//     (the page store assigns offsets at commit time), the exclusive
//     committer itself takes a shared outer lock across Commit+Apply,
//     so appenders never hold it across their park and a capture's
//     exclusive acquisition still fences out in-flight batches.
//
// The Committer borrows the store's writer mutex rather than owning
// one, so the store keeps its declared lock order (and its direct uses
// of the mutex for rolls, captures and shutdown) unchanged.

// Cell is one queued appender's parking spot, embedded in the store's
// append-request type.
type Cell struct {
	done chan struct{}
	err  error
	// delivered guards done against double close; promoted tells the
	// woken waiter its record is NOT yet durable and it must lead the
	// next batch itself. Both are written under the writer mutex before
	// done is closed and read only after done fires.
	delivered bool
	promoted  bool
	// leads marks a record whose Enqueue found no active leader: its
	// owner must lead when it comes back to Await. Written and read only
	// by the owning goroutine (set under Mu, but that is incidental).
	leads bool
}

// NewCell returns a Cell ready to park on.
func NewCell() Cell { return Cell{done: make(chan struct{})} }

// Parked is implemented by the store's append-request type.
type Parked interface{ Cell() *Cell }

// Committer runs the leader/batch protocol over the store's request
// type T. All callback fields must be set before the first Append
// (MaybeRoll and Apply may be nil).
type Committer[T Parked] struct {
	// Mu is the store's writer mutex; it guards the queue and leader
	// flag here plus whatever writer state the store keeps (active
	// segment, sizes). The store declares its lock order.
	Mu *sync.Mutex
	// Serial disables group commit: one write (+fsync when the store
	// syncs) per record with Mu held throughout, so concurrent
	// appenders serialize on the disk — the ablation baseline.
	Serial bool
	// Closed reports shutdown; called with Mu held.
	Closed func() bool
	// ErrClosed is returned to appenders racing shutdown.
	ErrClosed error
	// Commit writes one batch contiguously to the active segment with a
	// single write and at most one fsync. Called by the exclusive
	// committer — the leader outside Mu, or a serial appender under it —
	// so the store's active-segment fields need no extra
	// synchronization: the segment cannot roll while a commit is in
	// flight. On error nothing may be applied.
	Commit func(batch []T) error
	// Apply, when set, applies a durable batch's state effects; called
	// with Mu held.
	Apply func(batch []T)
	// MaybeRoll, when set, is called with Mu held after a successful
	// commit+apply; the store rolls its active segment if oversized
	// (best effort — a failed roll leaves the oversized segment active).
	MaybeRoll func()
	// Outer, when set, acquires a shared outer lock and returns its
	// release. The exclusive committer holds it from just before Commit
	// until after Apply+MaybeRoll, so a capture that takes the same lock
	// exclusively fences out in-flight batches without appenders ever
	// holding it across their park. Acquired with Mu released (the outer
	// lock orders before Mu in the store's declared order).
	Outer func() func()
	// FailStop wedges the committer after the first commit error: every
	// queued and future append fails with that error. Required by stores
	// that apply state at enqueue time (the version WAL) — without it a
	// failed batch followed by a successful one would leave per-key gaps
	// in the durable log that replay rejects.
	FailStop bool

	queue   []T
	leading bool
	// pending counts records enqueued (either phase) whose batch has not
	// yet resolved; idle is signalled when it reaches zero, for
	// QuiesceLocked. Both are guarded by Mu.
	pending int
	idle    *sync.Cond
	failed  error
}

// Append writes one record durably and applies its effects. Concurrent
// appends coalesce into group commits unless the committer is serial.
func (c *Committer[T]) Append(a T) error {
	if c.Serial {
		// The serial appender is the exclusive committer, so it takes the
		// outer lock itself — before Mu, matching the declared order.
		var release func()
		if c.Outer != nil {
			release = c.Outer()
			defer release()
		}
		c.Mu.Lock()
		err := c.admitLocked()
		if err == nil {
			if err = c.Commit([]T{a}); err == nil {
				if c.Apply != nil {
					c.Apply([]T{a})
				}
				if c.MaybeRoll != nil {
					c.MaybeRoll()
				}
			} else if c.FailStop {
				c.failed = err
			}
		}
		c.Mu.Unlock()
		return err
	}
	c.Mu.Lock()
	if err := c.admitLocked(); err != nil {
		c.Mu.Unlock()
		return err
	}
	c.queue = append(c.queue, a)
	c.pending++
	if !c.leading {
		c.leading = true
		return c.lead(a.Cell()) // releases Mu
	}
	c.Mu.Unlock()
	cell := a.Cell()
	<-cell.done
	if cell.promoted {
		c.Mu.Lock()
		return c.lead(cell) // releases Mu
	}
	return cell.err
}

// admitLocked is the shared entry check: closed stores and wedged
// fail-stop committers reject new records. Called with Mu held.
func (c *Committer[T]) admitLocked() error {
	if c.Closed() {
		return c.ErrClosed
	}
	if c.failed != nil {
		return c.failed
	}
	return nil
}

// Enqueue queues one record for commit and returns without waiting for
// durability — phase one of a two-phase append. The caller typically
// holds store locks Append would stall across the fsync; it applies the
// record's state effects under those locks (the committer's Apply must
// be nil then), releases them, and calls Await to park for durability.
// Serial committers queue too: lead commits their records one write
// (+fsync) per record, preserving the ablation baseline while keeping
// enqueue-order = commit-order per key.
func (c *Committer[T]) Enqueue(a T) error {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if err := c.admitLocked(); err != nil {
		return err
	}
	c.queue = append(c.queue, a)
	c.pending++
	if !c.leading {
		c.leading = true
		a.Cell().leads = true
	}
	return nil
}

// Await parks until a record queued with Enqueue is durable and returns
// its outcome — phase two. Must not be called holding any lock ordered
// at or after Mu.
func (c *Committer[T]) Await(a T) error {
	cell := a.Cell()
	if cell.leads {
		cell.leads = false
		c.Mu.Lock()
		if cell.delivered {
			// Shutdown (or a caretaker pass) resolved the record before
			// its owner came back to lead.
			err := cell.err
			c.Mu.Unlock()
			return err
		}
		return c.lead(cell) // releases Mu
	}
	<-cell.done
	if cell.promoted {
		c.Mu.Lock()
		return c.lead(cell) // releases Mu
	}
	return cell.err
}

// QuiesceLocked blocks until no queued or in-flight record remains, so
// a capture can cut the log knowing every enqueued record is resolved —
// two-phase appenders release store locks before durability, so a
// store-level exclusive lock alone no longer implies this. The caller
// must already exclude new mutators (its exclusive state lock); Mu is
// released while waiting and held again on return.
func (c *Committer[T]) QuiesceLocked() {
	for c.pending > 0 {
		if c.idle == nil {
			c.idle = sync.NewCond(c.Mu)
		}
		c.idle.Wait()
	}
}

// lead commits one batch — the current queue, which includes self's own
// record — delivers the outcome, and hands leadership to the first
// appender queued behind the batch. self is nil for a caretaker pass
// with no record of its own (tests). Called with Mu held; returns
// self's outcome with Mu released.
func (c *Committer[T]) lead(self *Cell) error {
	// Collect: yield once so appenders that are runnable right now —
	// typically the batch just delivered, already back with their next
	// record — join this batch instead of each eating an fsync. This is
	// what makes group commit form on a single core, where a leader
	// blocked in a short fsync syscall does not reliably give up its P
	// to the waiting appenders.
	c.Mu.Unlock()
	runtime.Gosched()
	c.Mu.Lock()
	batch := c.queue
	c.queue = nil
	closed := c.Closed()
	failed := c.failed
	c.Mu.Unlock()
	var err error
	var release func()
	committed := false
	if closed {
		// Shutdown may already have drained the queue (batch can even be
		// empty, self's record included in the drain); every outcome
		// here is the same error, so the two drains cannot disagree.
		err = c.ErrClosed
	} else if failed != nil {
		err = failed
	} else if len(batch) > 0 {
		if c.Outer != nil {
			release = c.Outer()
		}
		committed = true
		if c.Serial {
			// Two-phase records on a serial committer: one write (+fsync)
			// per record, stopping at the first failure so the durable
			// log stays a prefix of the enqueue order.
			for _, a := range batch {
				if err = c.Commit([]T{a}); err != nil {
					break
				}
			}
		} else {
			err = c.Commit(batch)
		}
	}
	c.Mu.Lock()
	if err == nil && len(batch) > 0 {
		if c.Apply != nil {
			c.Apply(batch)
		}
		if c.MaybeRoll != nil {
			c.MaybeRoll()
		}
	}
	if committed && err != nil && c.FailStop && c.failed == nil {
		c.failed = err
	}
	for _, a := range batch {
		cell := a.Cell()
		if cell == self {
			// Self returns synchronously; its done channel may already
			// be closed when it led a batch it was promoted into.
			cell.delivered = true
			cell.err = err
		} else {
			deliverLocked(cell, err)
		}
	}
	c.pending -= len(batch)
	if c.pending == 0 && c.idle != nil {
		c.idle.Broadcast()
	}
	if len(c.queue) > 0 && !c.Closed() {
		// One-batch tenure: whoever queued first behind this batch leads
		// the next one; its record stays queued and commits in that
		// batch.
		next := c.queue[0].Cell()
		next.promoted = true
		deliverLocked(next, nil)
	} else {
		c.leading = false
	}
	c.Mu.Unlock()
	if release != nil {
		release()
	}
	return err
}

// deliverLocked wakes a parked appender exactly once. Called with the
// writer mutex held.
func deliverLocked(cell *Cell, err error) {
	if cell.delivered {
		return
	}
	cell.delivered = true
	cell.err = err
	close(cell.done)
}

// FailQueuedLocked delivers err to every queued appender and empties
// the queue; the store's shutdown calls it with Mu held. A promoted
// waiter was already woken and will observe closed when it leads;
// delivery skips it.
func (c *Committer[T]) FailQueuedLocked(err error) {
	for _, a := range c.queue {
		deliverLocked(a.Cell(), err)
	}
	c.pending -= len(c.queue)
	c.queue = nil
	if c.pending == 0 && c.idle != nil {
		c.idle.Broadcast()
	}
}

// CaretakeLocked runs one leader pass with no record of its own — a
// test hook standing in for a returning leader. Called with Mu held;
// returns with Mu released.
func (c *Committer[T]) CaretakeLocked() error { return c.lead(nil) }

// SetLeadingLocked forces the leader flag — a test hook for pinning the
// queueing behaviour behind a leader mid-commit. Called with Mu held.
func (c *Committer[T]) SetLeadingLocked(v bool) { c.leading = v }

// QueueLenLocked reports the queued appender count. Called with Mu held.
func (c *Committer[T]) QueueLenLocked() int { return len(c.queue) }
