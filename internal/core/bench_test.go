package core

import (
	"context"
	"fmt"
	"testing"

	"blobseer/internal/wire"
)

// BenchmarkTreeBuild measures BUILD_META planning for updates of various
// sizes against a 64k-page blob — the A3 ablation's fast path. Weaving
// (not rebuilding) means cost scales with the update, not the blob.
func BenchmarkTreeBuild(b *testing.B) {
	gen := wire.NewPageIDGen()
	for _, pages := range []uint64{1, 16, 256} {
		b.Run(fmt.Sprintf("updatePages=%d", pages), func(b *testing.B) {
			pws := make([]PageWrite, pages)
			for i := range pws {
				pws[i] = PageWrite{Page: gen.Next(), Providers: []string{"p"}}
			}
			u := Update{
				Version:            2,
				Pages:              Range{Start: 4096, Count: pages},
				NewSizePages:       65536,
				Published:          1,
				PublishedSizePages: 65536,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := PlanUpdate(u, pws)
				if err != nil {
					b.Fatal(err)
				}
				_ = plan.NeedPublished()
			}
		})
	}
}

// BenchmarkReadPlan measures READ_META against trees of growing depth.
func BenchmarkReadPlan(b *testing.B) {
	for _, blobPages := range []uint64{256, 4096, 65536} {
		b.Run(fmt.Sprintf("blobPages=%d", blobPages), func(b *testing.B) {
			sim := newBlobSimB(b)
			sim.update(0, blobPages)
			root := RootID(1, blobPages)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReadPlan(ctx, sim.st, root, Range{Start: blobPages / 2, Count: 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBorderResolution measures the writer-side border descent with
// concurrent in-flight updates present — the §4.2 hot path.
func BenchmarkBorderResolution(b *testing.B) {
	sim := newBlobSimB(b)
	sim.update(0, 4096)
	// Ten in-flight updates the writer must weave around.
	type job struct {
		u  Update
		pw []PageWrite
	}
	var jobs []job
	for i := 0; i < 10; i++ {
		u, pw := sim.assign(uint64(i*128), 64)
		jobs = append(jobs, job{u, pw})
	}
	target, targetPw := sim.assign(2048, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := PlanUpdate(target, targetPw)
		if err != nil {
			b.Fatal(err)
		}
		resolved, err := ResolvePublished(context.Background(), sim.st,
			target.Published, target.PublishedSizePages, plan.NeedPublished())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := plan.Finalize(resolved); err != nil {
			b.Fatal(err)
		}
	}
	_ = jobs
}

// newBlobSimB adapts the test harness for benchmarks.
func newBlobSimB(b *testing.B) *blobSim {
	return &blobSim{
		t:       b,
		st:      newFakeStore(),
		gen:     wire.NewPageIDGen(),
		model:   []modelSnapshot{{size: 0, pages: nil}},
		nextVer: 1,
	}
}
