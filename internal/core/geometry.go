// Package core implements BlobSeer's primary contribution: the versioned
// distributed segment tree (§4 of the paper). Every snapshot version of a
// blob is described by a binary tree whose leaves map pages to the data
// providers storing them; updates create only the nodes covering their
// range and "weave" them with nodes of older versions, so consecutive
// snapshots physically share both pages and metadata.
//
// The package is purely algorithmic: it plans metadata reads and writes
// in terms of an abstract NodeStore, and all arithmetic is in page units.
// Byte/page conversion, DHT key construction and RPC happen in the layers
// above (internal/meta, internal/client).
package core

import (
	"fmt"
	"math/bits"

	"blobseer/internal/wire"
)

// Range is a span of pages: [Start, Start+Count).
type Range struct {
	Start uint64
	Count uint64
}

// End returns the first page index past the range.
func (r Range) End() uint64 { return r.Start + r.Count }

// Intersects reports whether two ranges share at least one page.
func (r Range) Intersects(o Range) bool {
	return r.Start < o.End() && o.Start < r.End()
}

// Contains reports whether o lies fully inside r.
func (r Range) Contains(o Range) bool {
	return r.Start <= o.Start && o.End() <= r.End()
}

// String renders the range for diagnostics.
func (r Range) String() string { return fmt.Sprintf("[%d,+%d)", r.Start, r.Count) }

// NodeID identifies one tree node within a blob lineage: the snapshot
// version that created it and the aligned page range it covers. Span is a
// power of two and Offset is a multiple of Span (leaves have Span == 1).
type NodeID struct {
	Version wire.Version
	Offset  uint64
	Span    uint64
}

// Range returns the page range the node covers.
func (id NodeID) Range() Range { return Range{Start: id.Offset, Count: id.Span} }

// IsLeaf reports whether the node covers exactly one page.
func (id NodeID) IsLeaf() bool { return id.Span == 1 }

// Left returns the id of the left child (same range first half). The
// child's version is stored in the parent node, not derivable from the id.
func (id NodeID) Left(version wire.Version) NodeID {
	return NodeID{Version: version, Offset: id.Offset, Span: id.Span / 2}
}

// Right returns the id of the right child (second half of the range).
func (id NodeID) Right(version wire.Version) NodeID {
	return NodeID{Version: version, Offset: id.Offset + id.Span/2, Span: id.Span / 2}
}

// String renders the id for diagnostics.
func (id NodeID) String() string {
	return fmt.Sprintf("v%d@[%d,+%d)", id.Version, id.Offset, id.Span)
}

// RootSpan returns the span of the tree root for a blob of sizePages
// pages: the smallest power of two covering them (minimum 1). A blob of 5
// pages has a root covering 8, matching Figure 1(c) of the paper.
func RootSpan(sizePages uint64) uint64 {
	if sizePages <= 1 {
		return 1
	}
	return 1 << bits.Len64(sizePages-1)
}

// RootID returns the root node id of the snapshot with the given version
// and size. Every update builds nodes up to the root, so the root of
// snapshot v always carries version v.
func RootID(v wire.Version, sizePages uint64) NodeID {
	return NodeID{Version: v, Offset: 0, Span: RootSpan(sizePages)}
}

// NodeExists reports whether the tree of an update with range upd and
// post-update size sizePages contains a node covering r. Per §4.2, the
// built node set is exactly the aligned ranges that intersect the update
// range, from leaves up to the root span.
func NodeExists(upd Range, sizePages uint64, r Range) bool {
	return r.Start < RootSpan(sizePages) && r.Intersects(upd) && r.Count <= RootSpan(sizePages)
}
