package core

import (
	"context"
	"fmt"

	"blobseer/internal/wire"
)

// Node is the content of one tree node. Leaves locate a page; inner nodes
// carry the snapshot versions of their two children (the weaving links of
// §4.1). A child version of wire.NoVersion marks a hole: a subtree range
// that has never been written (possible in incomplete trees, Figure 1(c)).
type Node struct {
	Leaf bool

	// Leaf fields. Providers lists every data provider holding a replica
	// of the page; the paper stores one copy ("each page is stored on a
	// single provider", §3.2) and names replication as future work, which
	// this implements: readers fail over across the list.
	Page      wire.PageID
	Providers []string

	// Inner fields.
	VL wire.Version
	VR wire.Version
}

// node encoding tags.
const (
	nodeTagInner byte = 0
	nodeTagLeaf  byte = 1 // single-provider leaf (the paper's layout)
	nodeTagLeafR byte = 2 // replicated leaf: uint8 count, then addresses
)

// Encode serializes the node for storage in the metadata DHT.
func (n *Node) Encode() []byte {
	w := wire.NewWriter(32)
	switch {
	case n.Leaf && len(n.Providers) == 1:
		w.Uint8(nodeTagLeaf)
		w.Raw(n.Page[:])
		w.String(n.Providers[0])
	case n.Leaf:
		w.Uint8(nodeTagLeafR)
		w.Raw(n.Page[:])
		w.Uint8(uint8(len(n.Providers)))
		for _, p := range n.Providers {
			w.String(p)
		}
	default:
		w.Uint8(nodeTagInner)
		w.Uint64(n.VL)
		w.Uint64(n.VR)
	}
	return w.Bytes()
}

// DecodeNode parses a node encoded with Encode.
func DecodeNode(p []byte) (Node, error) {
	r := wire.NewReader(p)
	var n Node
	switch tag := r.Uint8(); tag {
	case nodeTagLeaf:
		n.Leaf = true
		copy(n.Page[:], r.Raw(16))
		n.Providers = []string{r.String()}
	case nodeTagLeafR:
		n.Leaf = true
		copy(n.Page[:], r.Raw(16))
		cnt := int(r.Uint8())
		n.Providers = make([]string, 0, cnt)
		for i := 0; i < cnt; i++ {
			n.Providers = append(n.Providers, r.String())
		}
	case nodeTagInner:
		n.VL = r.Uint64()
		n.VR = r.Uint64()
	default:
		return Node{}, fmt.Errorf("core: unknown node tag %d", tag)
	}
	if err := r.Finish(); err != nil {
		return Node{}, fmt.Errorf("core: decoding node: %w", err)
	}
	if n.Leaf && len(n.Providers) == 0 {
		return Node{}, fmt.Errorf("core: leaf node with no providers")
	}
	return n, nil
}

// NodeStore is the persistence interface the algorithms traverse and
// populate. Implementations resolve a NodeID to a concrete storage key
// (adding the blob lineage namespace) and talk to the metadata DHT;
// package meta provides the production implementation, tests use an
// in-memory fake.
type NodeStore interface {
	// GetNodes fetches the given nodes. Every id must exist: a missing
	// node means metadata corruption (or a reference to an aborted
	// update) and must surface as an error naming the id.
	GetNodes(ctx context.Context, ids []NodeID) ([]Node, error)
	// PutNodes stores nodes; ids[i] describes nodes[i]. Nodes are
	// immutable, so re-storing an existing id is a harmless no-op.
	PutNodes(ctx context.Context, ids []NodeID, nodes []Node) error
}
