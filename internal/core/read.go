package core

import (
	"context"
	"fmt"
	"sort"

	"blobseer/internal/wire"
)

// PageRead locates one page of a snapshot for a READ: which providers
// store which page id, and where the page sits in the blob. Providers has
// one entry per replica; readers may fetch from any of them.
type PageRead struct {
	Index     uint64 // page index within the blob
	Page      wire.PageID
	Providers []string
}

// ReadPlan implements READ_META (Algorithm 3 of the paper): it descends
// the segment tree of one snapshot from root and returns a page descriptor
// for every page intersecting want, sorted by page index.
//
// The descent is breadth-first with one batched NodeStore fetch per tree
// level, which is the same round-trip count as the paper's parallel
// exploration of the node set NS.
func ReadPlan(ctx context.Context, st NodeStore, root NodeID, want Range) ([]PageRead, error) {
	if want.Count == 0 {
		return nil, nil
	}
	if !root.Range().Contains(want) {
		return nil, fmt.Errorf("core: read %v outside tree root %v", want, root)
	}
	out := make([]PageRead, 0, want.Count)
	frontier := []NodeID{root}
	for len(frontier) > 0 {
		nodes, err := st.GetNodes(ctx, frontier)
		if err != nil {
			return nil, err
		}
		var next []NodeID
		for i, id := range frontier {
			n := nodes[i]
			if id.IsLeaf() {
				if !n.Leaf {
					return nil, fmt.Errorf("core: node %v should be a leaf", id)
				}
				out = append(out, PageRead{Index: id.Offset, Page: n.Page, Providers: n.Providers})
				continue
			}
			if n.Leaf {
				return nil, fmt.Errorf("core: node %v should be inner", id)
			}
			for _, half := range []struct {
				id NodeID
				v  wire.Version
			}{
				{id.Left(n.VL), n.VL},
				{id.Right(n.VR), n.VR},
			} {
				if !half.id.Range().Intersects(want) {
					continue
				}
				if half.v == wire.NoVersion {
					return nil, fmt.Errorf("core: read %v crosses hole at %v under %v",
						want, half.id.Range(), id)
				}
				next = append(next, half.id)
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if uint64(len(out)) != want.Count {
		return nil, fmt.Errorf("core: read %v resolved %d pages, want %d",
			want, len(out), want.Count)
	}
	return out, nil
}
