package core

import (
	"fmt"

	"blobseer/internal/wire"
)

// InFlight describes a lower-versioned update that has been assigned but
// not yet published. The version manager hands the writer this list at
// assignment time — the paper's "partial set of border nodes" (§4.2) —
// precisely so concurrent writers can weave their trees without waiting
// for each other.
type InFlight struct {
	Version wire.Version
	Pages   Range
}

// Update carries everything BUILD_META needs about one assigned update.
type Update struct {
	// Version is the snapshot version assigned by the version manager.
	Version wire.Version
	// Pages is the page range this update rewrites.
	Pages Range
	// NewSizePages is the blob size (in pages) after this update.
	NewSizePages uint64
	// Published is a recently published version (0 for a blob that was
	// still empty at assignment time).
	Published wire.Version
	// PublishedSizePages is snapshot Published's size in pages.
	PublishedSizePages uint64
	// InFlight lists the assigned-but-unpublished updates with versions
	// below Version, in any order.
	InFlight []InFlight
}

// PageWrite names one freshly stored page of the update; element i covers
// blob page Pages.Start+i. Providers lists every data provider the page
// was stored on (one entry without replication).
type PageWrite struct {
	Page      wire.PageID
	Providers []string
}

// Plan is the output of PlanUpdate: the new tree nodes of one update,
// with border-child versions either already resolved (from the in-flight
// list) or awaiting the published-tree lookups listed by NeedPublished.
type Plan struct {
	update Update
	ids    []NodeID
	nodes  []Node

	// pending maps an unresolved border range to the node field(s) that
	// need its version filled in.
	pending map[Range][]slot
}

// slot addresses one child-version field of one planned node.
type slot struct {
	node int  // index into nodes
	left bool // which child field
}

// PlanUpdate implements the pure part of BUILD_META (Algorithm 4): it
// builds the new leaves and inner nodes bottom-up and resolves every
// border child it can from the in-flight list. Border ranges that predate
// all in-flight updates must be resolved against the published tree; they
// are reported by NeedPublished and filled in by Finalize.
func PlanUpdate(u Update, pages []PageWrite) (*Plan, error) {
	if u.Pages.Count == 0 {
		return nil, fmt.Errorf("core: empty update")
	}
	if uint64(len(pages)) != u.Pages.Count {
		return nil, fmt.Errorf("core: update covers %d pages but %d were written",
			u.Pages.Count, len(pages))
	}
	if u.NewSizePages < u.Pages.End() {
		return nil, fmt.Errorf("core: new size %d pages below update end %d",
			u.NewSizePages, u.Pages.End())
	}
	rootSpan := RootSpan(u.NewSizePages)
	p := &Plan{update: u, pending: make(map[Range][]slot)}

	// Leaves for the new pages.
	levelOffsets := make([]uint64, 0, u.Pages.Count)
	for i := uint64(0); i < u.Pages.Count; i++ {
		off := u.Pages.Start + i
		p.ids = append(p.ids, NodeID{Version: u.Version, Offset: off, Span: 1})
		p.nodes = append(p.nodes, Node{Leaf: true, Page: pages[i].Page, Providers: pages[i].Providers})
		levelOffsets = append(levelOffsets, off)
	}

	// Inner nodes, one level at a time up to the root. At each level the
	// built nodes are exactly the aligned ranges intersecting the update.
	for span := uint64(1); span < rootSpan; span *= 2 {
		parentSpan := span * 2
		var parents []uint64
		for _, off := range levelOffsets {
			pOff := off - off%parentSpan
			if len(parents) == 0 || parents[len(parents)-1] != pOff {
				parents = append(parents, pOff)
			}
		}
		for _, pOff := range parents {
			id := NodeID{Version: u.Version, Offset: pOff, Span: parentSpan}
			var n Node
			var err error
			n.VL, err = p.childVersion(Range{Start: pOff, Count: span}, len(p.nodes), true)
			if err != nil {
				return nil, err
			}
			n.VR, err = p.childVersion(Range{Start: pOff + span, Count: span}, len(p.nodes), false)
			if err != nil {
				return nil, err
			}
			p.ids = append(p.ids, id)
			p.nodes = append(p.nodes, n)
		}
		levelOffsets = parents
	}
	if len(levelOffsets) != 1 || levelOffsets[0] != 0 {
		return nil, fmt.Errorf("core: tree did not converge to a root (top level %v)", levelOffsets)
	}
	return p, nil
}

// childVersion decides the version reference for the child range c of a
// node being built at nodes[nodeIdx] (about to be appended).
func (p *Plan) childVersion(c Range, nodeIdx int, left bool) (wire.Version, error) {
	u := p.update
	// Built by this very update?
	if c.Intersects(u.Pages) {
		return u.Version, nil
	}
	// The newest in-flight update intersecting c owns the border node.
	var best wire.Version
	found := false
	for _, inf := range u.InFlight {
		if inf.Version < u.Version && inf.Pages.Intersects(c) {
			if !found || inf.Version > best {
				best, found = inf.Version, true
			}
		}
	}
	if found {
		return best, nil
	}
	// Fall back to the published tree.
	if u.PublishedSizePages == 0 || c.Start >= u.PublishedSizePages {
		return wire.NoVersion, nil // never-written hole
	}
	pubSpan := RootSpan(u.PublishedSizePages)
	if c.Count > pubSpan {
		// c strictly contains the published root, yet nothing in flight
		// covers the gap — the blob could never have grown past the
		// published size, so this update's own range would have had to
		// intersect c. Reaching here means inconsistent inputs.
		return 0, fmt.Errorf("core: border %v wider than published tree (span %d)", c, pubSpan)
	}
	if c.Count == pubSpan && c.Start == 0 {
		// c is exactly the published root: the paper's "the set of border
		// nodes contains exactly one node: the root of snapshot vp".
		return u.Published, nil
	}
	p.pending[c] = append(p.pending[c], slot{node: nodeIdx, left: left})
	return 0, nil // placeholder; Finalize fills it
}

// NeedPublished lists the border ranges that must be resolved by
// descending the published tree (see ResolvePublished).
func (p *Plan) NeedPublished() []Range {
	out := make([]Range, 0, len(p.pending))
	for r := range p.pending {
		out = append(out, r)
	}
	return out
}

// Published returns the published version/size the plan was built
// against, for convenience when calling ResolvePublished.
func (p *Plan) Published() (wire.Version, uint64) {
	return p.update.Published, p.update.PublishedSizePages
}

// Finalize fills the resolved border versions in and returns the complete
// node set to store. resolved must cover every range from NeedPublished.
func (p *Plan) Finalize(resolved map[Range]wire.Version) (ids []NodeID, nodes []Node, err error) {
	for r, slots := range p.pending {
		v, ok := resolved[r]
		if !ok {
			return nil, nil, fmt.Errorf("core: border %v left unresolved", r)
		}
		for _, s := range slots {
			if s.left {
				p.nodes[s.node].VL = v
			} else {
				p.nodes[s.node].VR = v
			}
		}
	}
	return p.ids, p.nodes, nil
}

// NodeCount returns how many nodes the plan creates (leaves + inner).
func (p *Plan) NodeCount() int { return len(p.nodes) }

// RootID returns the id of the new snapshot's root node.
func (p *Plan) RootID() NodeID {
	return RootID(p.update.Version, p.update.NewSizePages)
}
