package core

import (
	"context"
	"fmt"

	"blobseer/internal/wire"
)

// ResolvePublished finds, for each requested aligned range, the version
// whose node covers that exact range in the published snapshot's tree —
// i.e. the highest published version whose update range intersects it.
// This is the read-only part of computing the border node set (§4.2): the
// writer descends the published tree once, batching node fetches level by
// level, and gathers the child-version links for all requested ranges.
//
// A range that lies beyond the data actually written resolves to
// wire.NoVersion (a hole).
func ResolvePublished(ctx context.Context, st NodeStore, published wire.Version,
	publishedSizePages uint64, ranges []Range) (map[Range]wire.Version, error) {

	out := make(map[Range]wire.Version, len(ranges))
	if len(ranges) == 0 {
		return out, nil
	}
	if publishedSizePages == 0 {
		for _, r := range ranges {
			out[r] = wire.NoVersion
		}
		return out, nil
	}
	root := RootID(published, publishedSizePages)

	// Targets are grouped by the tree node currently covering them.
	type group struct {
		id      NodeID
		targets []Range
	}
	frontier := map[NodeID][]Range{}
	for _, r := range ranges {
		switch {
		case r == root.Range():
			out[r] = published
		case !root.Range().Contains(r):
			return nil, fmt.Errorf("core: range %v outside published tree %v", r, root)
		default:
			frontier[root] = append(frontier[root], r)
		}
	}

	for len(frontier) > 0 {
		groups := make([]group, 0, len(frontier))
		ids := make([]NodeID, 0, len(frontier))
		for id, ts := range frontier {
			groups = append(groups, group{id: id, targets: ts})
			ids = append(ids, id)
		}
		nodes, err := st.GetNodes(ctx, ids)
		if err != nil {
			return nil, err
		}
		next := map[NodeID][]Range{}
		for gi, g := range groups {
			n := nodes[gi]
			if n.Leaf {
				return nil, fmt.Errorf("core: descended into leaf %v with pending targets", g.id)
			}
			for _, tgt := range g.targets {
				var childVer wire.Version
				var child NodeID
				if tgt.End() <= g.id.Offset+g.id.Span/2 {
					childVer, child = n.VL, g.id.Left(n.VL)
				} else if tgt.Start >= g.id.Offset+g.id.Span/2 {
					childVer, child = n.VR, g.id.Right(n.VR)
				} else {
					return nil, fmt.Errorf("core: target %v straddles children of %v", tgt, g.id)
				}
				switch {
				case childVer == wire.NoVersion:
					// The hole covers everything below it.
					out[tgt] = wire.NoVersion
				case child.Range() == tgt:
					out[tgt] = childVer
				default:
					next[child] = append(next[child], tgt)
				}
			}
		}
		frontier = next
	}
	return out, nil
}
