package core

import (
	"context"
	"fmt"
	"testing"

	"blobseer/internal/wire"
)

// fakeStore is a strict in-memory NodeStore: fetching a missing node
// fails, exactly like the production store, so dangling weaving links are
// caught immediately.
type fakeStore struct {
	nodes map[NodeID]Node
	gets  int // GetNodes round trips, for overhead assertions
}

func newFakeStore() *fakeStore {
	return &fakeStore{nodes: make(map[NodeID]Node)}
}

func (f *fakeStore) GetNodes(_ context.Context, ids []NodeID) ([]Node, error) {
	f.gets++
	out := make([]Node, len(ids))
	for i, id := range ids {
		n, ok := f.nodes[id]
		if !ok {
			return nil, fmt.Errorf("fakeStore: missing node %v", id)
		}
		out[i] = n
	}
	return out, nil
}

func (f *fakeStore) PutNodes(_ context.Context, ids []NodeID, nodes []Node) error {
	if len(ids) != len(nodes) {
		return fmt.Errorf("fakeStore: %d ids, %d nodes", len(ids), len(nodes))
	}
	for i, id := range ids {
		if _, dup := f.nodes[id]; dup {
			continue
		}
		f.nodes[id] = nodes[i]
	}
	return nil
}

func (f *fakeStore) nodeCount() int { return len(f.nodes) }

// blobSim drives the core algorithms the way the version manager and a
// client would, with a reference model for verification. It supports the
// paper's concurrency pattern: several updates assigned (and therefore
// holding in-flight knowledge of each other) before any publishes.
// failer is the slice of testing.T/testing.B the harness needs.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
	Fatal(args ...any)
}

type blobSim struct {
	t     failer
	st    *fakeStore
	gen   *wire.PageIDGen
	model []modelSnapshot // index = version

	published wire.Version
	inFlight  []InFlight // assigned, unpublished, ascending versions
	nextVer   wire.Version
	// pendingSize tracks blob size growth across assigned-but-unpublished
	// appends, like the version manager does.
	pendingSize uint64
}

// modelSnapshot is the expected content of one snapshot: which PageID
// owns each blob page.
type modelSnapshot struct {
	size  uint64
	pages []wire.PageID
}

func newBlobSim(t *testing.T) *blobSim {
	return &blobSim{
		t:   t,
		st:  newFakeStore(),
		gen: wire.NewPageIDGen(),
		// Version 0: the empty snapshot.
		model:   []modelSnapshot{{size: 0, pages: nil}},
		nextVer: 1,
	}
}

// assign mimics the version manager: allocate the next version, record
// the in-flight descriptor, return the Update a writer would receive.
// Pass start == ^uint64(0) for an append.
func (b *blobSim) assign(start, count uint64) (Update, []PageWrite) {
	if start == ^uint64(0) {
		start = b.pendingSize
	}
	if start > b.pendingSize {
		b.t.Fatalf("assign: offset %d beyond size %d", start, b.pendingSize)
	}
	u := Update{
		Version:            b.nextVer,
		Pages:              Range{Start: start, Count: count},
		Published:          b.published,
		PublishedSizePages: b.model[b.published].size,
		InFlight:           append([]InFlight(nil), b.inFlight...),
	}
	newSize := b.pendingSize
	if start+count > newSize {
		newSize = start + count
	}
	u.NewSizePages = newSize
	b.pendingSize = newSize
	b.inFlight = append(b.inFlight, InFlight{Version: u.Version, Pages: u.Pages})
	b.nextVer++

	pages := make([]PageWrite, count)
	for i := range pages {
		pages[i] = PageWrite{Page: b.gen.Next(), Providers: []string{fmt.Sprintf("prov-%d", i%7)}}
	}

	// Extend the reference model: snapshot u.Version = snapshot
	// u.Version-1 overlaid with the new pages.
	prev := b.model[u.Version-1]
	snap := modelSnapshot{size: newSize, pages: make([]wire.PageID, newSize)}
	copy(snap.pages, prev.pages)
	for i := uint64(0); i < count; i++ {
		snap.pages[start+i] = pages[i].Page
	}
	b.model = append(b.model, snap)
	return u, pages
}

// build runs the writer's metadata path: plan, resolve borders against
// the published tree, finalize, store.
func (b *blobSim) build(u Update, pages []PageWrite) {
	b.t.Helper()
	plan, err := PlanUpdate(u, pages)
	if err != nil {
		b.t.Fatalf("PlanUpdate v%d: %v", u.Version, err)
	}
	resolved, err := ResolvePublished(context.Background(), b.st,
		u.Published, u.PublishedSizePages, plan.NeedPublished())
	if err != nil {
		b.t.Fatalf("ResolvePublished v%d: %v", u.Version, err)
	}
	ids, nodes, err := plan.Finalize(resolved)
	if err != nil {
		b.t.Fatalf("Finalize v%d: %v", u.Version, err)
	}
	if err := b.st.PutNodes(context.Background(), ids, nodes); err != nil {
		b.t.Fatalf("PutNodes v%d: %v", u.Version, err)
	}
}

// publish marks the oldest in-flight update published (the version
// manager publishes strictly in order).
func (b *blobSim) publish() {
	if len(b.inFlight) == 0 {
		b.t.Fatal("publish with nothing in flight")
	}
	v := b.inFlight[0].Version
	b.inFlight = b.inFlight[1:]
	b.published = v
}

// update is the common fast path: assign, build, publish immediately.
func (b *blobSim) update(start, count uint64) wire.Version {
	u, pages := b.assign(start, count)
	b.build(u, pages)
	b.publish()
	return u.Version
}

// verify checks ReadPlan against the reference model for the given
// version over the given range.
func (b *blobSim) verify(v wire.Version, r Range) {
	b.t.Helper()
	snap := b.model[v]
	root := RootID(v, snap.size)
	got, err := ReadPlan(context.Background(), b.st, root, r)
	if err != nil {
		b.t.Fatalf("ReadPlan v%d %v: %v", v, r, err)
	}
	if uint64(len(got)) != r.Count {
		b.t.Fatalf("ReadPlan v%d %v: %d pages", v, r, len(got))
	}
	for i, pr := range got {
		wantIdx := r.Start + uint64(i)
		if pr.Index != wantIdx {
			b.t.Fatalf("ReadPlan v%d %v: page %d has index %d, want %d", v, r, i, pr.Index, wantIdx)
		}
		if pr.Page != snap.pages[wantIdx] {
			b.t.Fatalf("ReadPlan v%d %v: page %d resolves to %v, want %v",
				v, r, wantIdx, pr.Page, snap.pages[wantIdx])
		}
	}
}

// verifyAll checks every page of every published snapshot.
func (b *blobSim) verifyAll() {
	b.t.Helper()
	for v := wire.Version(1); v <= b.published; v++ {
		if sz := b.model[v].size; sz > 0 {
			b.verify(v, Range{Start: 0, Count: sz})
		}
	}
}
