package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"blobseer/internal/wire"
)

func TestRootSpan(t *testing.T) {
	cases := []struct{ size, want uint64 }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16},
		{1023, 1024}, {1024, 1024}, {1025, 2048}, {1 << 40, 1 << 40}, {1<<40 + 1, 1 << 41},
	}
	for _, c := range cases {
		if got := RootSpan(c.size); got != c.want {
			t.Errorf("RootSpan(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestQuickRootSpanProperties(t *testing.T) {
	f := func(size uint64) bool {
		size %= 1 << 50
		s := RootSpan(size)
		// Power of two, covers size, and half of it would not.
		if s&(s-1) != 0 {
			return false
		}
		if size > 0 && s < size {
			return false
		}
		if size > 1 && s/2 >= size {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOps(t *testing.T) {
	a := Range{Start: 4, Count: 4} // [4,8)
	if !a.Intersects(Range{Start: 7, Count: 10}) {
		t.Error("overlap not detected")
	}
	if a.Intersects(Range{Start: 8, Count: 1}) {
		t.Error("adjacent ranges do not intersect")
	}
	if a.Intersects(Range{Start: 0, Count: 4}) {
		t.Error("adjacent ranges do not intersect (left)")
	}
	if !a.Contains(Range{Start: 5, Count: 2}) {
		t.Error("containment not detected")
	}
	if a.Contains(Range{Start: 5, Count: 4}) {
		t.Error("false containment")
	}
	if a.End() != 8 {
		t.Errorf("End = %d", a.End())
	}
}

func TestQuickRangeIntersectSymmetric(t *testing.T) {
	f := func(aStart, aCount, bStart, bCount uint16) bool {
		a := Range{Start: uint64(aStart), Count: uint64(aCount%64) + 1}
		b := Range{Start: uint64(bStart), Count: uint64(bCount%64) + 1}
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		// Intersection iff some page is in both.
		brute := false
		for p := a.Start; p < a.End(); p++ {
			if p >= b.Start && p < b.End() {
				brute = true
				break
			}
		}
		return a.Intersects(b) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDChildren(t *testing.T) {
	id := NodeID{Version: 5, Offset: 8, Span: 8}
	l, r := id.Left(3), id.Right(4)
	if l != (NodeID{Version: 3, Offset: 8, Span: 4}) {
		t.Errorf("Left = %v", l)
	}
	if r != (NodeID{Version: 4, Offset: 12, Span: 4}) {
		t.Errorf("Right = %v", r)
	}
	if !(NodeID{Span: 1}).IsLeaf() || (NodeID{Span: 2}).IsLeaf() {
		t.Error("IsLeaf wrong")
	}
}

func TestNodeEncodeDecode(t *testing.T) {
	leaf := Node{Leaf: true, Page: wire.PageID{1, 2, 3}, Providers: []string{"node-7:data"}}
	inner := Node{VL: 12, VR: wire.NoVersion}
	for _, n := range []Node{leaf, inner} {
		got, err := DecodeNode(n.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, n) {
			t.Errorf("round trip: got %+v want %+v", got, n)
		}
	}
	if _, err := DecodeNode([]byte{99}); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := DecodeNode(append(leaf.Encode(), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeNode(inner.Encode()[:5]); err == nil {
		t.Error("truncated node accepted")
	}
}

// TestPaperFigure1 replays the paper's running example exactly:
// (a) write 4 pages -> snapshot 1; (b) overwrite pages 1-2 (0-indexed)
// -> snapshot 2; (c) append 1 page -> snapshot 3.
func TestPaperFigure1(t *testing.T) {
	b := newBlobSim(t)

	// (a) Initial write of four pages.
	u1, pages1 := b.assign(0, 4)
	b.build(u1, pages1)
	b.publish()
	// Tree: 4 leaves + 2 inner + root = 7 nodes.
	if got := b.st.nodeCount(); got != 7 {
		t.Fatalf("after v1: %d nodes, want 7", got)
	}
	b.verify(1, Range{Start: 0, Count: 4})

	// (b) Overwrite the middle two pages.
	u2, pages2 := b.assign(1, 2)
	b.build(u2, pages2)
	b.publish()
	// New grey nodes: leaves (1,1),(2,1), inner (0,2),(2,2), root (0,4) = 5.
	if got := b.st.nodeCount(); got != 12 {
		t.Fatalf("after v2: %d nodes, want 12", got)
	}
	// Weaving: grey (0,2) points left at the white leaf, right at grey.
	grey02 := b.st.nodes[NodeID{Version: 2, Offset: 0, Span: 2}]
	if grey02.VL != 1 || grey02.VR != 2 {
		t.Fatalf("grey (0,2) children = v%d,v%d; want v1,v2", grey02.VL, grey02.VR)
	}
	grey22 := b.st.nodes[NodeID{Version: 2, Offset: 2, Span: 2}]
	if grey22.VL != 2 || grey22.VR != 1 {
		t.Fatalf("grey (2,2) children = v%d,v%d; want v2,v1", grey22.VL, grey22.VR)
	}
	// Both snapshots remain fully readable (snapshot isolation).
	b.verify(1, Range{Start: 0, Count: 4})
	b.verify(2, Range{Start: 0, Count: 4})

	// (c) Append one page; the tree grows to span 8.
	u3, pages3 := b.assign(^uint64(0), 1)
	if u3.Pages.Start != 4 {
		t.Fatalf("append assigned offset %d, want 4", u3.Pages.Start)
	}
	b.build(u3, pages3)
	b.publish()
	// Black nodes: leaf (4,1), inner (4,2),(4,4), root (0,8) = 4 new.
	if got := b.st.nodeCount(); got != 16 {
		t.Fatalf("after v3: %d nodes, want 16", got)
	}
	// The black root's left child is the grey root of snapshot 2.
	blackRoot := b.st.nodes[NodeID{Version: 3, Offset: 0, Span: 8}]
	if blackRoot.VL != 2 {
		t.Fatalf("black root left child = v%d, want v2 (the old root)", blackRoot.VL)
	}
	if blackRoot.VR != 3 {
		t.Fatalf("black root right child = v%d, want v3", blackRoot.VR)
	}
	// The incomplete right subtree has holes.
	black44 := b.st.nodes[NodeID{Version: 3, Offset: 4, Span: 4}]
	if black44.VR != wire.NoVersion {
		t.Fatalf("black (4,4) right child = v%d, want hole", black44.VR)
	}
	black42 := b.st.nodes[NodeID{Version: 3, Offset: 4, Span: 2}]
	if black42.VL != 3 || black42.VR != wire.NoVersion {
		t.Fatalf("black (4,2) children = v%d,v%d; want v3,hole", black42.VL, black42.VR)
	}
	b.verify(3, Range{Start: 0, Count: 5})
	b.verify(1, Range{Start: 0, Count: 4})
	b.verify(2, Range{Start: 0, Count: 4})
}

func TestSequentialRandomUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := newBlobSim(t)
	// First update creates the blob.
	b.update(0, uint64(rng.Intn(16)+1))
	for i := 0; i < 60; i++ {
		size := b.model[b.published].size
		if rng.Intn(3) == 0 {
			// Append 1..32 pages.
			b.update(^uint64(0), uint64(rng.Intn(32)+1))
			continue
		}
		// Overwrite a random in-bounds range (may extend past the end).
		start := uint64(rng.Intn(int(size + 1)))
		count := uint64(rng.Intn(16) + 1)
		b.update(start, count)
	}
	b.verifyAll()

	// Random sub-range reads across random versions.
	for i := 0; i < 200; i++ {
		v := wire.Version(rng.Intn(int(b.published)) + 1)
		size := b.model[v].size
		if size == 0 {
			continue
		}
		start := uint64(rng.Intn(int(size)))
		count := uint64(rng.Intn(int(size-start))) + 1
		b.verify(v, Range{Start: start, Count: count})
	}
}

// TestConcurrentAssignThenBuild reproduces the paper's core concurrency
// claim (§4.2): several updates get versions assigned before any of them
// writes metadata; each receives the in-flight descriptors of the lower
// versions and can weave correctly no matter the completion order.
func TestConcurrentAssignThenBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		b := newBlobSim(t)
		b.update(0, uint64(rng.Intn(12)+4)) // base blob

		// Assign a batch of concurrent updates.
		batch := rng.Intn(6) + 2
		type job struct {
			u     Update
			pages []PageWrite
		}
		jobs := make([]job, 0, batch)
		for j := 0; j < batch; j++ {
			size := b.pendingSize
			var u Update
			var pw []PageWrite
			if rng.Intn(3) == 0 {
				u, pw = b.assign(^uint64(0), uint64(rng.Intn(8)+1))
			} else {
				start := uint64(rng.Intn(int(size)))
				count := uint64(rng.Intn(8) + 1)
				u, pw = b.assign(start, count)
			}
			jobs = append(jobs, job{u, pw})
		}
		// Build metadata in a random order — the paper's point is that
		// no build needs to wait for an earlier one.
		for _, idx := range rng.Perm(batch) {
			b.build(jobs[idx].u, jobs[idx].pages)
		}
		// Publish in version order, verifying every snapshot as it lands.
		for j := 0; j < batch; j++ {
			b.publish()
		}
		b.verifyAll()
	}
}

func TestAppendGrowthDoublesSpan(t *testing.T) {
	b := newBlobSim(t)
	b.update(0, 1)
	for i := 0; i < 9; i++ {
		b.update(^uint64(0), uint64(1)<<uint(i)) // grow 1,2,4,... pages
	}
	b.verifyAll()
	// Final size 512 pages? 1+1+2+...+256 = 512.
	if got := b.model[b.published].size; got != 512 {
		t.Fatalf("final size %d", got)
	}
}

func TestMetadataSharingIsLogarithmic(t *testing.T) {
	// Overwriting one page of a large blob must create only ~log2(n) new
	// nodes, not rebuild the tree (§4.1 "rebuilding a full tree ... would
	// be space- and time-inefficient").
	b := newBlobSim(t)
	const n = 1024
	b.update(0, n)
	before := b.st.nodeCount()
	b.update(17, 1)
	created := b.st.nodeCount() - before
	if created != 11 { // leaf + 10 ancestors (span 2..1024)
		t.Fatalf("single-page overwrite created %d nodes, want 11", created)
	}
	b.verifyAll()
}

func TestReadPlanBatchesPerLevel(t *testing.T) {
	// Full read of a 256-page blob must need exactly depth+1 = 9 fetch
	// round trips, not one per node.
	b := newBlobSim(t)
	b.update(0, 256)
	b.st.gets = 0
	b.verify(1, Range{Start: 0, Count: 256})
	if b.st.gets != 9 {
		t.Fatalf("full read used %d round trips, want 9", b.st.gets)
	}
}

func TestReadPlanErrors(t *testing.T) {
	b := newBlobSim(t)
	b.update(0, 4)
	ctx := context.Background()

	// Empty read is trivially fine.
	if got, err := ReadPlan(ctx, b.st, RootID(1, 4), Range{}); err != nil || len(got) != 0 {
		t.Fatalf("empty read: %v %v", got, err)
	}
	// Outside the root.
	if _, err := ReadPlan(ctx, b.st, RootID(1, 4), Range{Start: 3, Count: 2}); err == nil {
		t.Fatal("read past root accepted")
	}
	// Through a hole: grow the tree with an append, then read a range
	// the snapshot covers structurally but that was never written.
	b.update(^uint64(0), 1) // size 5, root span 8
	if _, err := ReadPlan(ctx, b.st, RootID(2, 5), Range{Start: 5, Count: 2}); err == nil {
		t.Fatal("read through hole accepted")
	}
}

func TestPlanUpdateValidation(t *testing.T) {
	if _, err := PlanUpdate(Update{Version: 1}, nil); err == nil {
		t.Error("empty update accepted")
	}
	if _, err := PlanUpdate(Update{
		Version: 1, Pages: Range{Start: 0, Count: 2}, NewSizePages: 2,
	}, make([]PageWrite, 1)); err == nil {
		t.Error("page count mismatch accepted")
	}
	if _, err := PlanUpdate(Update{
		Version: 1, Pages: Range{Start: 0, Count: 4}, NewSizePages: 2,
	}, make([]PageWrite, 4)); err == nil {
		t.Error("size below update end accepted")
	}
}

func TestFinalizeRejectsUnresolved(t *testing.T) {
	// An update into the middle of an existing blob needs published
	// borders; finalizing without them must fail loudly.
	plan, err := PlanUpdate(Update{
		Version:            2,
		Pages:              Range{Start: 1, Count: 1},
		NewSizePages:       8,
		Published:          1,
		PublishedSizePages: 8,
	}, make([]PageWrite, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.NeedPublished()) == 0 {
		t.Fatal("expected unresolved borders")
	}
	if _, _, err := plan.Finalize(nil); err == nil {
		t.Fatal("Finalize with missing borders accepted")
	}
}

func TestResolvePublishedDirect(t *testing.T) {
	b := newBlobSim(t)
	b.update(0, 8)          // v1
	b.update(2, 2)          // v2
	b.update(^uint64(0), 1) // v3: size 9, root span 16
	ctx := context.Background()

	res, err := ResolvePublished(ctx, b.st, 3, 9, []Range{
		{Start: 0, Count: 2},  // untouched since v1
		{Start: 2, Count: 2},  // rewritten by v2
		{Start: 2, Count: 1},  // leaf level, rewritten by v2
		{Start: 8, Count: 1},  // the appended page: v3
		{Start: 0, Count: 16}, // the whole root
		{Start: 10, Count: 2}, // hole
		{Start: 12, Count: 4}, // hole
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[Range]wire.Version{
		{Start: 0, Count: 2}:  1,
		{Start: 2, Count: 2}:  2,
		{Start: 2, Count: 1}:  2,
		{Start: 8, Count: 1}:  3,
		{Start: 0, Count: 16}: 3,
		{Start: 10, Count: 2}: wire.NoVersion,
		{Start: 12, Count: 4}: wire.NoVersion,
	}
	for r, v := range want {
		if res[r] != v {
			t.Errorf("resolve %v = v%d, want v%d", r, res[r], v)
		}
	}

	// Empty blob: everything is a hole.
	res, err = ResolvePublished(ctx, b.st, 0, 0, []Range{{Start: 0, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res[Range{Start: 0, Count: 4}] != wire.NoVersion {
		t.Error("empty published tree should resolve to holes")
	}

	// Range outside the tree is an input error.
	if _, err := ResolvePublished(ctx, b.st, 3, 9, []Range{{Start: 16, Count: 4}}); err == nil {
		t.Error("out-of-tree range accepted")
	}
}

func TestQuickSequentialModelEquivalence(t *testing.T) {
	// Property: after any sequence of contiguity-respecting updates, every
	// snapshot reads back exactly per the model. Driven by testing/quick
	// as a randomized op-sequence generator.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := newBlobSim(t)
		b.update(0, uint64(rng.Intn(8)+1))
		for i := 0; i < 12; i++ {
			size := b.model[b.published].size
			if rng.Intn(2) == 0 {
				b.update(^uint64(0), uint64(rng.Intn(6)+1))
			} else {
				start := uint64(rng.Intn(int(size)))
				b.update(start, uint64(rng.Intn(6)+1))
			}
		}
		b.verifyAll()
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeExists(t *testing.T) {
	upd := Range{Start: 4, Count: 2} // pages 4,5 of a 6-page blob
	size := uint64(6)
	cases := []struct {
		r    Range
		want bool
	}{
		{Range{Start: 4, Count: 1}, true},   // updated leaf
		{Range{Start: 0, Count: 1}, false},  // untouched leaf
		{Range{Start: 4, Count: 2}, true},   // exact update range
		{Range{Start: 0, Count: 8}, true},   // root
		{Range{Start: 0, Count: 4}, false},  // left subtree untouched
		{Range{Start: 8, Count: 1}, false},  // beyond root span
		{Range{Start: 0, Count: 16}, false}, // wider than root
	}
	for _, c := range cases {
		if got := NodeExists(upd, size, c.r); got != c.want {
			t.Errorf("NodeExists(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestNodeEncodeDecodeReplicated(t *testing.T) {
	leaf := Node{Leaf: true, Page: wire.PageID{9, 9}, Providers: []string{"a:1", "b:2", "c:3"}}
	got, err := DecodeNode(leaf.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, leaf) {
		t.Fatalf("round trip: got %+v want %+v", got, leaf)
	}
	// Single-provider leaves must keep the compact paper-layout encoding.
	single := Node{Leaf: true, Page: wire.PageID{1}, Providers: []string{"a:1"}}
	multi := Node{Leaf: true, Page: wire.PageID{1}, Providers: []string{"a:1", "b:2"}}
	if len(single.Encode()) >= len(multi.Encode()) {
		t.Fatal("single-replica leaf encoding is not the compact form")
	}
	// A leaf with no providers must be rejected on decode.
	bad := append([]byte{2}, make([]byte, 16)...) // tag leafR, page id, count 0
	bad = append(bad, 0)
	if _, err := DecodeNode(bad); err == nil {
		t.Fatal("leaf with zero providers accepted")
	}
}

func TestNodeEncodeDecodeQuick(t *testing.T) {
	f := func(page [16]byte, provs []string, vl, vr uint64, leaf bool, nProv uint8) bool {
		var n Node
		if leaf {
			// Build 1..4 provider addresses; quick gives arbitrary strings.
			cnt := int(nProv)%4 + 1
			ps := make([]string, cnt)
			for i := range ps {
				if i < len(provs) {
					ps[i] = provs[i]
				}
			}
			n = Node{Leaf: true, Page: wire.PageID(page), Providers: ps}
		} else {
			n = Node{VL: vl, VR: vr}
		}
		got, err := DecodeNode(n.Encode())
		return err == nil && reflect.DeepEqual(got, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
