package transport

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// exerciseNetwork runs a conformance suite against any Network.
func exerciseNetwork(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	if l.Addr() == "" {
		t.Fatal("empty listener address")
	}

	// Echo server.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()

	c, err := n.Dial(context.Background(), l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	msg := []byte("the quick brown fox")
	if _, err := c.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	c.Close()

	// Large transfer integrity: 4 MiB of pseudo-random bytes.
	c2, err := n.Dial(context.Background(), l.Addr())
	if err != nil {
		t.Fatalf("Dial 2: %v", err)
	}
	payload := make([]byte, 4<<20)
	rand.New(rand.NewSource(7)).Read(payload)
	wantSum := sha256.Sum256(payload)
	go func() {
		c2.Write(payload)
	}()
	h := sha256.New()
	if _, err := io.CopyN(h, c2, int64(len(payload))); err != nil {
		t.Fatalf("CopyN: %v", err)
	}
	if !bytes.Equal(h.Sum(nil), wantSum[:]) {
		t.Fatal("large transfer corrupted")
	}
	c2.Close()

	l.Close()
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept after Close should fail")
	}
	wg.Wait()
}

func TestInprocConformance(t *testing.T) {
	exerciseNetwork(t, NewInproc(), "svc")
}

func TestTCPConformance(t *testing.T) {
	exerciseNetwork(t, TCP{}, "127.0.0.1:0")
}

func TestInprocDialUnknown(t *testing.T) {
	n := NewInproc()
	if _, err := n.Dial(context.Background(), "nobody"); !errors.Is(err, ErrUnknownAddress) {
		t.Fatalf("err = %v, want ErrUnknownAddress", err)
	}
}

func TestInprocAutoAddress(t *testing.T) {
	n := NewInproc()
	l1, _ := n.Listen("")
	l2, _ := n.Listen("")
	if l1.Addr() == l2.Addr() {
		t.Fatalf("auto addresses collided: %q", l1.Addr())
	}
}

func TestInprocDuplicateListen(t *testing.T) {
	n := NewInproc()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate Listen should fail")
	}
}

func TestInprocDialCanceledContext(t *testing.T) {
	n := NewInproc()
	l, _ := n.Listen("busy")
	// Fill the backlog so Dial must block, then cancel.
	for i := 0; i < 64; i++ {
		if _, err := n.Dial(context.Background(), "busy"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := n.Dial(ctx, "busy"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	l.Close()
}

func TestInprocNetworkClose(t *testing.T) {
	n := NewInproc()
	l, _ := n.Listen("a")
	n.Close()
	if _, err := l.Accept(); err == nil {
		t.Fatal("Accept after network Close should fail")
	}
	if _, err := n.Listen("b"); err == nil {
		t.Fatal("Listen after network Close should fail")
	}
}

func TestPipeCloseUnblocksPeer(t *testing.T) {
	a, b := newPipePair()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		done <- err
	}()
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("Read after peer close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read did not unblock after Close")
	}
}

func TestPipeDrainsBufferedDataAfterClose(t *testing.T) {
	a, b := newPipePair()
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("drained %q, want %q", got, "tail")
	}
}

func TestPipeWriteBlocksWhenFull(t *testing.T) {
	a, b := newPipePair()
	big := make([]byte, pipeBufferSize+1024)
	wrote := make(chan struct{})
	go func() {
		a.Write(big)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("write larger than buffer should have blocked")
	case <-time.After(20 * time.Millisecond):
	}
	// Draining unblocks the writer.
	if _, err := io.ReadFull(b, make([]byte, len(big))); err != nil {
		t.Fatal(err)
	}
	<-wrote
}

func TestPipeConcurrentChunks(t *testing.T) {
	a, b := newPipePair()
	const chunks = 200
	const chunkLen = 8 << 10
	src := make([]byte, chunks*chunkLen)
	rand.New(rand.NewSource(1)).Read(src)
	go func() {
		for i := 0; i < chunks; i++ {
			a.Write(src[i*chunkLen : (i+1)*chunkLen])
		}
		a.Close()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stream corrupted under chunked writes")
	}
}
