package transport

import (
	"context"
	"fmt"
	"sync"
)

// Inproc is an in-memory Network. All listeners and dialers sharing one
// Inproc instance can reach each other; separate instances are isolated,
// which makes tests hermetic. Construct with NewInproc.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
	closed    bool
}

// NewInproc returns an empty in-memory network.
func NewInproc() *Inproc {
	return &Inproc{listeners: make(map[string]*inprocListener)}
}

// Dial implements Network.
func (n *Inproc) Dial(ctx context.Context, addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("inproc dial %q: %w", addr, ErrUnknownAddress)
	}
	local, remote := newPipePair()
	select {
	case l.backlog <- remote:
		return local, nil
	case <-l.done:
		local.Close()
		return nil, fmt.Errorf("inproc dial %q: %w", addr, ErrClosed)
	case <-ctx.Done():
		local.Close()
		return nil, ctx.Err()
	}
}

// Listen implements Network. An empty addr allocates a unique synthetic
// address of the form "inproc-N".
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if addr == "" {
		n.nextAuto++
		addr = fmt.Sprintf("inproc-%d", n.nextAuto)
	}
	if _, dup := n.listeners[addr]; dup {
		return nil, fmt.Errorf("inproc listen %q: address in use", addr)
	}
	l := &inprocListener{
		net:     n,
		addr:    addr,
		backlog: make(chan Conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Close closes the network: all listeners stop accepting.
func (n *Inproc) Close() error {
	n.mu.Lock()
	ls := make([]*inprocListener, 0, len(n.listeners))
	for _, l := range n.listeners {
		ls = append(ls, l)
	}
	n.closed = true
	n.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	return nil
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }
