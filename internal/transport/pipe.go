package transport

import (
	"io"
	"sync"
)

// pipeBufferSize is the capacity of one direction of an in-process
// connection. It is sized like a typical kernel socket buffer so that
// writers of RPC frames rarely block.
const pipeBufferSize = 256 << 10

// halfPipe is one direction of an in-process connection: a bounded byte
// queue with blocking reads and writes.
type halfPipe struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []byte // ring storage
	start    int    // index of first unread byte
	n        int    // unread byte count
	closed   bool   // no more writes; reads drain then EOF
}

func newHalfPipe() *halfPipe {
	p := &halfPipe{buf: make([]byte, pipeBufferSize)}
	p.notEmpty.L = &p.mu
	p.notFull.L = &p.mu
	return p
}

// Write appends p, blocking while the buffer is full. It returns
// ErrClosed if the pipe is closed before all bytes are accepted.
func (h *halfPipe) Write(p []byte) (int, error) {
	written := 0
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(p) > 0 {
		for h.n == len(h.buf) && !h.closed {
			h.notFull.Wait()
		}
		if h.closed {
			return written, ErrClosed
		}
		chunk := len(h.buf) - h.n
		if chunk > len(p) {
			chunk = len(p)
		}
		end := (h.start + h.n) % len(h.buf)
		first := copy(h.buf[end:], p[:chunk])
		if first < chunk {
			copy(h.buf, p[first:chunk])
		}
		h.n += chunk
		p = p[chunk:]
		written += chunk
		h.notEmpty.Broadcast()
	}
	return written, nil
}

// Read fills p with available bytes, blocking while the buffer is empty.
// After Close, it drains buffered bytes and then returns io.EOF.
func (h *halfPipe) Read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.n == 0 && !h.closed {
		h.notEmpty.Wait()
	}
	if h.n == 0 {
		return 0, io.EOF
	}
	chunk := h.n
	if chunk > len(p) {
		chunk = len(p)
	}
	first := copy(p[:chunk], h.buf[h.start:min(h.start+chunk, len(h.buf))])
	if first < chunk {
		copy(p[first:chunk], h.buf)
	}
	h.start = (h.start + chunk) % len(h.buf)
	h.n -= chunk
	h.notFull.Broadcast()
	return chunk, nil
}

// Close marks the pipe closed and wakes all waiters.
func (h *halfPipe) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.notEmpty.Broadcast()
	h.notFull.Broadcast()
	return nil
}

// pipeConn is one endpoint of an in-process connection.
type pipeConn struct {
	rd *halfPipe // peer writes here, we read
	wr *halfPipe // we write here, peer reads
}

// newPipePair returns two connected endpoints.
func newPipePair() (*pipeConn, *pipeConn) {
	a2b := newHalfPipe()
	b2a := newHalfPipe()
	return &pipeConn{rd: b2a, wr: a2b}, &pipeConn{rd: a2b, wr: b2a}
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.rd.Read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.wr.Write(p) }

// Close shuts both directions down; the peer observes EOF after draining.
func (c *pipeConn) Close() error {
	c.rd.Close()
	c.wr.Close()
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
