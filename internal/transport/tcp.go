package transport

import (
	"context"
	"net"
)

// TCP is the production Network backed by the operating system's TCP
// stack. The zero value is ready to use.
type TCP struct{}

// Dial implements Network.
func (TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// RPC frames are small and latency-sensitive; disable Nagle.
		_ = tc.SetNoDelay(true)
	}
	return c, nil
}

// Listen implements Network.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (t tcpListener) Close() error { return t.l.Close() }
func (t tcpListener) Addr() string { return t.l.Addr().String() }
