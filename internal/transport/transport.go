// Package transport abstracts how BlobSeer processes reach each other.
//
// Three implementations exist:
//
//   - tcp: real TCP sockets, used by the cmd/blobseerd daemon;
//   - inproc: in-memory pipes for tests and embedded clusters;
//   - simnet (package internal/simnet): a flow-level network simulator
//     over a virtual clock, used by the experiment harness to reproduce
//     the paper's Grid'5000 testbed.
//
// All higher layers (rpc and above) depend only on the interfaces here, so
// the exact same service code runs over all three.
package transport

import (
	"context"
	"errors"
	"io"
)

// ErrClosed is returned by operations on a closed connection, listener or
// network.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownAddress is returned by Dial when no listener is bound to the
// requested address.
var ErrUnknownAddress = errors.New("transport: unknown address")

// Conn is a reliable, ordered byte stream between two processes. It is the
// minimal slice of net.Conn the rpc layer needs. Read and Write may be
// called concurrently with each other but not with themselves.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
}

// Listener accepts inbound connections bound to one address.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close unblocks Accept with ErrClosed and releases the address.
	Close() error
	// Addr returns the address peers should dial, e.g. "10.0.0.3:4400"
	// for TCP or "node-17" for simulated networks.
	Addr() string
}

// Network creates and accepts connections. Addresses are opaque strings
// whose format is implementation-specific.
type Network interface {
	// Dial opens a connection to the listener bound at addr.
	Dial(ctx context.Context, addr string) (Conn, error)
	// Listen binds a listener. For TCP, addr may end in ":0" to pick an
	// ephemeral port; the chosen address is available from Listener.Addr.
	Listen(addr string) (Listener, error)
}
