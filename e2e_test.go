package blobseer_test

import (
	"bufio"
	"bytes"

	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBinariesEndToEnd builds cmd/blobseerd and cmd/blobseer-cli and
// drives a real multi-process deployment over loopback TCP: one process
// per role, CLI subprocesses as clients. This is the closest thing to the
// paper's actual deployment that fits in a test.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped with -short")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		path := filepath.Join(bin, name)
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
		return path
	}
	daemon := build("blobseerd", "./cmd/blobseerd")
	cli := build("blobseer-cli", "./cmd/blobseer-cli")

	// start launches one daemon role and returns its advertised address,
	// scraped from the "listening on" log line.
	var procs []*exec.Cmd
	t.Cleanup(func() {
		for _, p := range procs {
			p.Process.Kill()
			p.Wait()
		}
	})
	start := func(args ...string) string {
		cmd := exec.Command(daemon, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %v: %v", args, err)
		}
		procs = append(procs, cmd)
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				if i := strings.Index(line, "listening on "); i >= 0 {
					addr := strings.Fields(line[i+len("listening on "):])[0]
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return addr
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %v did not report its address", args)
			return ""
		}
	}

	vm := start("-role", "version-manager", "-listen", "127.0.0.1:0")
	pm := start("-role", "provider-manager", "-listen", "127.0.0.1:0")
	meta1 := start("-role", "metadata", "-listen", "127.0.0.1:0")
	meta2 := start("-role", "metadata", "-listen", "127.0.0.1:0")
	start("-role", "data", "-listen", "127.0.0.1:0", "-manager", pm,
		"-heartbeat", "100ms")
	start("-role", "data", "-listen", "127.0.0.1:0", "-manager", pm,
		"-heartbeat", "100ms")

	base := []string{"-vm", vm, "-pm", pm, "-meta", meta1 + "," + meta2}
	run := func(stdin []byte, args ...string) string {
		cmd := exec.Command(cli, append(append([]string{}, base...), args...)...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("cli %v: %v\nstderr: %s", args, err, errb.String())
		}
		return out.String()
	}

	// create → id
	id := strings.TrimSpace(run(nil, "create", "-pagesize", "4096"))
	if id != "1" {
		t.Fatalf("created blob id %q, want 1", id)
	}
	// append two generations
	gen1 := bytes.Repeat([]byte("alpha-page."), 800) // ~8.8 KB
	out := run(gen1, "append", id)
	if !strings.Contains(out, "version 1") {
		t.Fatalf("append said %q", out)
	}
	gen2 := bytes.Repeat([]byte("BETA!"), 400)
	out = run(gen2, "append", id)
	if !strings.Contains(out, "version 2") {
		t.Fatalf("second append said %q", out)
	}
	// read back snapshot 1 exactly
	got := run(nil, "read", id, "-version", "1")
	if got != string(gen1) {
		t.Fatalf("snapshot 1 read %d bytes, want %d", len(got), len(gen1))
	}
	// recent read = both generations
	got = run(nil, "read", id)
	if got != string(gen1)+string(gen2) {
		t.Fatalf("recent read %d bytes, want %d", len(got), len(gen1)+len(gen2))
	}
	// partial read across a page boundary
	got = run(nil, "read", id, "-version", "2", "-offset", "4000", "-length", "200")
	if got != string(append(append([]byte{}, gen1...), gen2...)[4000:4200]) {
		t.Fatal("ranged read mismatch")
	}
	// stat lists both versions
	statOut := run(nil, "stat", id)
	if !strings.Contains(statOut, "recent version 2") {
		t.Fatalf("stat said %q", statOut)
	}
	// branch at version 1 and diverge
	bid := strings.TrimSpace(run(nil, "branch", id, "-version", "1"))
	if bid == id || bid == "" {
		t.Fatalf("branch id %q", bid)
	}
	divergent := []byte("divergent future")
	run(divergent, "append", bid)
	got = run(nil, "read", bid)
	if got != string(gen1)+string(divergent) {
		t.Fatal("branch content mismatch")
	}
	// the original is unaffected by the branch's append
	got = run(nil, "read", id)
	if got != string(gen1)+string(gen2) {
		t.Fatal("original mutated by branch append")
	}
}

// TestDaemonDurableRestartProcess restarts a version-manager process on
// its WAL and checks the version sequence continues (process-level
// counterpart of the in-process WAL tests).
func TestDaemonDurableRestartProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test; skipped with -short")
	}
	bin := t.TempDir()
	daemonPath := filepath.Join(bin, "blobseerd")
	if out, err := exec.Command("go", "build", "-o", daemonPath, "./cmd/blobseerd").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cliPath := filepath.Join(bin, "blobseer-cli")
	if out, err := exec.Command("go", "build", "-o", cliPath, "./cmd/blobseer-cli").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	wal := filepath.Join(t.TempDir(), "vm.wal")

	startDaemon := func(args ...string) (*exec.Cmd, string) {
		cmd := exec.Command(daemonPath, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				go func() { // keep draining so the child never blocks on stderr
					for sc.Scan() {
					}
				}()
				return cmd, strings.Fields(line[i+len("listening on "):])[0]
			}
		}
		t.Fatal("daemon did not report its address")
		return nil, ""
	}

	vmProc, vm := startDaemon("-role", "version-manager", "-listen", "127.0.0.1:0", "-wal", wal)
	pmProc, pm := startDaemon("-role", "provider-manager", "-listen", "127.0.0.1:0")
	metaProc, meta := startDaemon("-role", "metadata", "-listen", "127.0.0.1:0")
	dataProc, _ := startDaemon("-role", "data", "-listen", "127.0.0.1:0", "-manager", pm, "-heartbeat", "100ms")
	t.Cleanup(func() {
		for _, p := range []*exec.Cmd{pmProc, metaProc, dataProc} {
			p.Process.Kill()
			p.Wait()
		}
	})

	cliRun := func(vmAddr string, stdin []byte, args ...string) (string, error) {
		cmd := exec.Command(cliPath, append([]string{"-vm", vmAddr, "-pm", pm, "-meta", meta}, args...)...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		err := cmd.Run()
		return out.String(), err
	}

	id, err := cliRun(vm, nil, "create", "-pagesize", "1024")
	if err != nil {
		t.Fatal(err)
	}
	id = strings.TrimSpace(id)
	if _, err := cliRun(vm, bytes.Repeat([]byte{7}, 2048), "append", id); err != nil {
		t.Fatal(err)
	}

	// Kill the version manager outright (no graceful shutdown) and restart
	// it on the same WAL.
	vmProc.Process.Kill()
	vmProc.Wait()
	vmProc2, vm2 := startDaemon("-role", "version-manager", "-listen", "127.0.0.1:0", "-wal", wal)
	t.Cleanup(func() { vmProc2.Process.Kill(); vmProc2.Wait() })

	out, err := cliRun(vm2, bytes.Repeat([]byte{8}, 1024), "append", id)
	if err != nil {
		t.Fatalf("append after VM restart: %v", err)
	}
	if !strings.Contains(out, "version 2") {
		t.Fatalf("append after restart said %q, want version 2 (sequence lost?)", out)
	}
	statOut, err := cliRun(vm2, nil, "stat", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statOut, "recent version 2") || !strings.Contains(statOut, "3072 bytes") {
		t.Fatalf("stat after restart: %q", statOut)
	}
}
